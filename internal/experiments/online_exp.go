package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"time"

	"raal/internal/core"
	"raal/internal/encode"
	"raal/internal/online"
	"raal/internal/telemetry"
)

// OnlineBench is the seeded workload-shift drill through the full
// online-learning loop (internal/online): a champion trained on one cost
// distribution serves feedback from a shifted one, the rolling q-error
// quantile trips the drift detector, a challenger warm-starts from the
// replay reservoir, wins the shadow comparison, and is promoted. The
// leading fields match the benchdiff schema; the q-error triplet is the
// recovery story BENCH_online.json gates on.
type OnlineBench struct {
	Name string  `json:"name"`
	NsOp float64 `json:"ns_op"` // mean wall time per feedback observation
	N    int     `json:"n"`     // feedback observations ingested

	// Mean served q-error per phase: on the trained distribution, on the
	// shifted distribution before the promotion lands (the drift the
	// detector sees), and on a shifted holdout after promotion.
	PreShiftQ    float64 `json:"pre_shift_q"`
	DriftPeakQ   float64 `json:"drift_peak_q"`
	PostPromoteQ float64 `json:"post_promote_q"`
	// StaleQ prices the same post-shift holdout with the original
	// champion — what serving would still look like without the loop.
	StaleQ float64 `json:"stale_q"`

	// Loop bookkeeping for the run.
	DriftTriggers uint64 `json:"drift_triggers"`
	Retrains      uint64 `json:"retrains"`
	Promotions    uint64 `json:"promotions"`
	Champion      int    `json:"champion"`
	// PromotedAt is the index of the post-shift feedback at which the
	// promoted challenger first served (-1 = never promoted).
	PromotedAt int `json:"promoted_at"`
}

// OnlineResult is the drift-drill report.
type OnlineResult struct {
	Benchmarks []OnlineBench `json:"benchmarks"`
}

// Print renders the recovery table.
func (r *OnlineResult) Print(w io.Writer) {
	fmt.Fprintf(w, "%-22s %10s %10s %10s %10s %8s %8s %7s %9s\n",
		"workload", "pre-q", "drift-q", "post-q", "stale-q", "trigger", "promote", "champ", "at-fdbk")
	for _, b := range r.Benchmarks {
		fmt.Fprintf(w, "%-22s %10.3f %10.3f %10.3f %10.3f %8d %8d %7s %9d\n",
			b.Name, b.PreShiftQ, b.DriftPeakQ, b.PostPromoteQ, b.StaleQ,
			b.DriftTriggers, b.Promotions, fmt.Sprintf("v%d", b.Champion), b.PromotedAt)
	}
}

// JSON writes the machine-readable form consumed by cmd/benchdiff.
func (r *OnlineResult) JSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// onlineDataset is the micro fixture with a cost-surface multiplier:
// scale > 1 is the injected workload shift — the "same" queries suddenly
// run scale× slower than the distribution the champion trained on.
func onlineDataset(n int, seed int64, scale float64) []*encode.Sample {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*encode.Sample, n)
	for i := range out {
		out[i] = microSample(rng)
		out[i].CostSec *= scale
	}
	return out
}

// Drill shape: the shift multiplies every cost by onlineShift, and the
// post-shift stream is long enough for the window to fill, the retrain
// to fire, and the shadow comparison to settle.
const (
	onlineShift     = 3.0
	onlinePreFeeds  = 64
	onlinePostFeeds = 600
	onlineHoldout   = 64
)

// Online runs the seeded drift drill. Everything is deterministic for a
// fixed -seed: the champion's training, the feedback streams, the
// reservoir, and the challenger's warm-start Fit, so the promoted
// version and its q-errors reproduce bit-for-bit run over run.
func Online(opt Options) (*OnlineResult, error) {
	cfg := core.DefaultConfig(microSem, microNodes)
	cfg.Hidden = 16
	cfg.K = 8
	cfg.Seed = opt.Seed
	tc := core.DefaultTrainConfig()
	tc.Epochs = 40
	tc.Batch = 16
	tc.LR = 5e-3
	tc.Seed = opt.Seed
	tc.State = core.NewTrainState()
	champ, _, err := core.Train(onlineDataset(200, 1, 1), core.RAAL(), cfg, tc)
	if err != nil {
		return nil, err
	}
	stale := champ.Clone() // what serving would be stuck with, frozen pre-drill

	met := online.NewMetrics(telemetry.NewRegistry())
	mgr, err := online.NewManager(champ, tc.State, online.Config{
		ReplayCap:      256,
		Seed:           opt.Seed,
		DriftWindow:    32,
		DriftThreshold: 1.8,
		MinRetrain:     96,
		ShadowMin:      24,
		Cooldown:       128, // space retrains out: the drill is about recovery, not churn
		Train:          core.TrainConfig{Epochs: 40, Batch: 16, LR: 5e-3, Seed: opt.Seed},
		Metrics:        met,
	})
	if err != nil {
		return nil, err
	}

	// feed serves one sample off the live champion and closes the loop
	// with the observed cost, returning the served q-error.
	feed := func(s *encode.Sample) float64 {
		v := mgr.Champion()
		pred := v.Model.Predict([]*encode.Sample{s})[0]
		mgr.Observe(s, pred, s.CostSec)
		return online.QError(pred, s.CostSec)
	}

	start := time.Now()
	// Phase 1: the trained distribution — the loop must hold still.
	var preQ float64
	for _, s := range onlineDataset(onlinePreFeeds, 21, 1) {
		preQ += feed(s)
	}
	preQ /= onlinePreFeeds

	// Phase 2: the shift. Serve and observe until the loop has detected,
	// retrained, shadow-scored, and promoted.
	var (
		driftSum   float64
		driftN     int
		promotedAt = -1
	)
	for i, s := range onlineDataset(onlinePostFeeds, 22, onlineShift) {
		q := feed(s)
		if mgr.Champion().Num == 1 {
			driftSum += q // stale champion pricing shifted work
			driftN++
		} else if promotedAt < 0 {
			promotedAt = i
		}
	}
	elapsed := time.Since(start)
	if promotedAt < 0 {
		return nil, fmt.Errorf("experiments: drift drill never promoted a challenger: %+v", mgr.Status())
	}

	// Phase 3: recovery, scored on a shifted holdout neither model saw.
	holdout := onlineDataset(onlineHoldout, 23, onlineShift)
	fresh := mgr.Champion()
	postQ := meanQErr(fresh.Model, holdout)
	staleQ := meanQErr(stale, holdout)

	n := onlinePreFeeds + onlinePostFeeds
	return &OnlineResult{Benchmarks: []OnlineBench{{
		Name:          "online/drift-drill",
		NsOp:          float64(elapsed.Nanoseconds()) / float64(n),
		N:             n,
		PreShiftQ:     preQ,
		DriftPeakQ:    driftSum / float64(driftN),
		PostPromoteQ:  postQ,
		StaleQ:        staleQ,
		DriftTriggers: met.DriftTriggers.Value(),
		Retrains:      met.Retrains.Value(),
		Promotions:    met.Promotions.With("shadow").Value(),
		Champion:      fresh.Num,
		PromotedAt:    promotedAt,
	}}}, nil
}

// meanQErr is the mean q-error of m's predictions over samples.
func meanQErr(m *core.Model, samples []*encode.Sample) float64 {
	preds := m.Predict(samples)
	var sum float64
	for i, s := range samples {
		sum += online.QError(preds[i], s.CostSec)
	}
	return sum / float64(len(samples))
}
