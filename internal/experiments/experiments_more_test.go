package experiments

import (
	"bytes"
	"math"
	"testing"
)

func TestFig1TunedBeatsOrMatchesDefault(t *testing.T) {
	lab := quickLab(t)
	r, err := Fig1(lab)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 20 {
		t.Fatalf("want 20 queries, got %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.DefaultSec <= 0 || row.TunedSec <= 0 {
			t.Fatalf("non-positive time: %+v", row)
		}
	}
	// The tuned choice selects among candidates including the default, so
	// in aggregate it should not lose badly even under a quick model.
	if r.TotalTuned() > r.TotalDefault()*1.25 {
		t.Fatalf("tuned total %.1f much worse than default %.1f",
			r.TotalTuned(), r.TotalDefault())
	}
	var buf bytes.Buffer
	r.Print(&buf)
	if buf.Len() == 0 {
		t.Fatal("empty report")
	}
}

func TestFig7ScatterShapes(t *testing.T) {
	lab := quickLab(t)
	r, err := Fig7(lab)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.WithRes) != len(lab.TestSamples) || len(r.WithoutRes) != len(lab.TestSamples) {
		t.Fatalf("scatter sizes %d/%d, want %d", len(r.WithRes), len(r.WithoutRes), len(lab.TestSamples))
	}
	for _, p := range r.WithRes {
		if p.Actual <= 0 || math.IsNaN(p.Estimated) {
			t.Fatalf("bad point %+v", p)
		}
	}
	var buf bytes.Buffer
	r.Print(&buf)
	if buf.Len() == 0 {
		t.Fatal("empty report")
	}
}

func TestTable7Shapes(t *testing.T) {
	lab := quickLab(t)
	r, err := Table7(lab)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("want 4 architectures, got %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if math.IsNaN(row.With.MSE) || math.IsNaN(row.Without.MSE) {
			t.Fatalf("%s: NaN metrics", row.Name)
		}
	}
	var buf bytes.Buffer
	r.Print(&buf)
	if buf.Len() == 0 {
		t.Fatal("empty report")
	}
}

func TestTable5RAALvsTLSTM(t *testing.T) {
	opt := QuickOptions()
	opt.NumQueries = 40
	opt.Epochs = 6
	r, err := Table5(opt)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(r.RAAL.MSE) || math.IsNaN(r.TLSTM.MSE) {
		t.Fatalf("NaN metrics: %+v", r)
	}
	var buf bytes.Buffer
	r.Print(&buf)
	if buf.Len() == 0 {
		t.Fatal("empty report")
	}
}

func TestEncAblationShapes(t *testing.T) {
	lab := quickLab(t)
	r, err := EncAblation(lab)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(r.Word2Vec.MSE) || math.IsNaN(r.OneHot.MSE) {
		t.Fatalf("NaN metrics: %+v", r)
	}
	var buf bytes.Buffer
	r.Print(&buf)
	if buf.Len() == 0 {
		t.Fatal("empty report")
	}
}

func TestTable9GPSJNote(t *testing.T) {
	// GPSJ's absolute latency differs from the paper (our analytical walk
	// is trivially cheap); the learned models' ms-scale batched inference
	// is the reproducible claim.
	lab := quickLab(t)
	r, err := Table9(lab)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Rows {
		if row.Model == "RAAL" && row.MsPer100 > 10_000 {
			t.Fatalf("RAAL inference absurdly slow: %v ms/100", row.MsPer100)
		}
	}
}
