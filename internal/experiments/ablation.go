package experiments

import (
	"io"

	"raal/internal/core"
	"raal/internal/metrics"
)

// VariantMetrics is one row of an ablation table.
type VariantMetrics struct {
	Name    string
	Metrics metrics.Result
}

// AblationResult reproduces Table IV (module analysis) and Fig. 6 (loss
// curves) in one pass: the four architectures trained on the same corpus.
type AblationResult struct {
	Rows   []VariantMetrics
	Curves map[string][]float64 // Fig. 6: loss per epoch per variant
}

// Ablation trains RAAL, NE-LSTM, NA-LSTM, and RAAC on the lab's corpus and
// evaluates each on the held-out split.
func Ablation(lab *Lab) (*AblationResult, error) {
	if lab.ablation != nil {
		return lab.ablation, nil
	}
	out := &AblationResult{Curves: map[string][]float64{}}
	for _, v := range core.AllVariants() {
		model, tr, err := lab.TrainVariant(v)
		if err != nil {
			return nil, err
		}
		res, err := model.Evaluate(lab.TestSamples)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, VariantMetrics{Name: v.Name, Metrics: res})
		out.Curves[v.Name] = tr.LossCurve
		if v.Name == "RAAL" && lab.raalModel == nil {
			lab.raalModel = model
		}
	}
	lab.ablation = out
	return out, nil
}

// Print renders Table IV followed by the Fig. 6 loss series.
func (r *AblationResult) Print(w io.Writer) {
	fprintf(w, "Table IV: module analysis on held-out queries\n")
	fprintf(w, "%-10s %10s %10s %10s %10s\n", "model", "RE", "MSE", "COR", "R2")
	for _, row := range r.Rows {
		m := row.Metrics
		fprintf(w, "%-10s %10.4f %10.4f %10.4f %10.4f\n", row.Name, m.RE, m.MSE, m.COR, m.R2)
	}
	fprintf(w, "\nFig 6: training loss per epoch\n")
	for _, row := range r.Rows {
		fprintf(w, "%-10s", row.Name)
		for _, l := range r.Curves[row.Name] {
			fprintf(w, " %8.4f", l)
		}
		fprintf(w, "\n")
	}
}

// Table7Row is one architecture evaluated without and with the
// resource-aware attention layer.
type Table7Row struct {
	Name            string
	Without, With   metrics.Result
	BenchmarksLabel string
}

// Table7Result reproduces Table VII: the impact of resource-aware
// attention on every architecture, per benchmark.
type Table7Result struct {
	Bench string
	Rows  []Table7Row
}

// Table7 trains each architecture twice (resource-blind and
// resource-aware) on the lab's corpus.
func Table7(lab *Lab) (*Table7Result, error) {
	out := &Table7Result{Bench: lab.Opt.Bench}
	for _, v := range core.AllVariants() {
		var blindModel, awareModel *core.Model
		var err error
		if v.Name == "RAAL" {
			if blindModel, err = lab.BlindRAALModel(); err != nil {
				return nil, err
			}
			if awareModel, err = lab.RAALModel(); err != nil {
				return nil, err
			}
		} else {
			if blindModel, _, err = lab.TrainVariant(v.WithoutResources()); err != nil {
				return nil, err
			}
			if awareModel, _, err = lab.TrainVariant(v); err != nil {
				return nil, err
			}
		}
		blind, err := blindModel.Evaluate(lab.TestSamples)
		if err != nil {
			return nil, err
		}
		aware, err := awareModel.Evaluate(lab.TestSamples)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, Table7Row{Name: v.Name, Without: blind, With: aware})
	}
	return out, nil
}

// Print renders the without/with pairs, bold-right style as in the paper.
func (r *Table7Result) Print(w io.Writer) {
	fprintf(w, "Table VII (%s): without | with resource-aware attention\n", r.Bench)
	fprintf(w, "%-10s %21s %21s %21s\n", "model", "RE (w/o | w/)", "MSE (w/o | w/)", "COR (w/o | w/)")
	for _, row := range r.Rows {
		fprintf(w, "%-10s %10.4f|%10.4f %10.4f|%10.4f %10.4f|%10.4f\n", row.Name,
			row.Without.RE, row.With.RE,
			row.Without.MSE, row.With.MSE,
			row.Without.COR, row.With.COR)
	}
}

// Fig7Point is one scatter point: actual vs estimated cost.
type Fig7Point struct {
	Actual, Estimated float64
}

// Fig7Result reproduces Fig. 7: the scatter of actual vs estimated costs
// with and without resource-aware attention.
type Fig7Result struct {
	Bench        string
	WithRes      []Fig7Point
	WithoutRes   []Fig7Point
	WithMetrics  metrics.Result
	BlindMetrics metrics.Result
}

// Fig7 evaluates RAAL and its resource-blind twin on the test split and
// returns the scatter data.
func Fig7(lab *Lab) (*Fig7Result, error) {
	aware, err := lab.RAALModel()
	if err != nil {
		return nil, err
	}
	blind, err := lab.BlindRAALModel()
	if err != nil {
		return nil, err
	}
	out := &Fig7Result{Bench: lab.Opt.Bench}
	awareEst := aware.Predict(lab.TestSamples)
	blindEst := blind.Predict(lab.TestSamples)
	for i, s := range lab.TestSamples {
		out.WithRes = append(out.WithRes, Fig7Point{Actual: s.CostSec, Estimated: awareEst[i]})
		out.WithoutRes = append(out.WithoutRes, Fig7Point{Actual: s.CostSec, Estimated: blindEst[i]})
	}
	if out.WithMetrics, err = aware.Evaluate(lab.TestSamples); err != nil {
		return nil, err
	}
	if out.BlindMetrics, err = blind.Evaluate(lab.TestSamples); err != nil {
		return nil, err
	}
	return out, nil
}

// Print renders the scatter as CSV-ish series plus summary metrics.
func (r *Fig7Result) Print(w io.Writer) {
	fprintf(w, "Fig 7 (%s): actual vs estimated cost\n", r.Bench)
	fprintf(w, "with resource-aware attention:    %s\n", r.WithMetrics)
	fprintf(w, "without resource-aware attention: %s\n", r.BlindMetrics)
	fprintf(w, "%-12s %-12s %-12s\n", "actual", "est(with)", "est(without)")
	n := len(r.WithRes)
	if n > 25 {
		n = 25 // preview; the full series is in the result struct
	}
	for i := 0; i < n; i++ {
		fprintf(w, "%-12.2f %-12.2f %-12.2f\n",
			r.WithRes[i].Actual, r.WithRes[i].Estimated, r.WithoutRes[i].Estimated)
	}
	if len(r.WithRes) > n {
		fprintf(w, "... (%d points total)\n", len(r.WithRes))
	}
}
