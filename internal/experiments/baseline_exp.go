package experiments

import (
	"io"
	"math"
	"time"

	"raal/internal/baselines"
	"raal/internal/core"
	"raal/internal/datagen"
	"raal/internal/encode"
	"raal/internal/metrics"
	"raal/internal/sparksim"
	"raal/internal/workload"
)

// Table5Result reproduces Table V: RAAL vs TLSTM under fixed resources
// (the relational-database setting: Spark installed locally, resources
// pinned for every query).
type Table5Result struct {
	RAAL, TLSTM metrics.Result
}

// Table5 collects a fixed-resource corpus and compares the two learned
// models on it. Fixed resources yield a single record per plan (there is
// no resource grid multiplying the corpus), so the query count is doubled
// to keep the training-set size comparable to the other experiments.
func Table5(opt Options) (*Table5Result, error) {
	opt = opt.withDefaults()
	opt.NumQueries *= 2
	fixed := sparksim.DefaultResources()

	lab, err := newLabWithFixedRes(opt, &fixed)
	if err != nil {
		return nil, err
	}

	raal, _, err := lab.TrainVariant(core.RAAL())
	if err != nil {
		return nil, err
	}
	raalRes, err := raal.Evaluate(lab.TestSamples)
	if err != nil {
		return nil, err
	}

	semDim := lab.Enc.NodeDim() - lab.Enc.MaxNodes() - 2
	tl := baselines.NewTLSTM(baselines.TLSTMConfig{
		SemDim: semDim, MaxNodes: lab.Enc.MaxNodes(), Hidden: 32, Seed: opt.Seed,
	})
	if _, err := tl.Fit(lab.TrainSamples, opt.Epochs, 16, opt.LR, opt.Seed); err != nil {
		return nil, err
	}
	tlRes, err := tl.Evaluate(lab.TestSamples)
	if err != nil {
		return nil, err
	}
	return &Table5Result{RAAL: raalRes, TLSTM: tlRes}, nil
}

// newLabWithFixedRes builds a lab whose records all share one resource
// allocation (the paper's "local Spark installation" setting).
func newLabWithFixedRes(opt Options, fixed *sparksim.Resources) (*Lab, error) {
	opt = opt.withDefaults()
	var db = datagen.IMDB(opt.Scale, opt.Seed)
	var gen *workload.Generator
	var err error
	if opt.Bench == "tpch" {
		db = datagen.TPCH(opt.Scale, opt.Seed)
		gen, err = workload.NewTPCHGenerator(db, opt.Seed)
	} else {
		gen, err = workload.NewIMDBGenerator(db, opt.Seed)
	}
	if err != nil {
		return nil, err
	}
	ccfg := workload.DefaultCollectConfig()
	ccfg.NumQueries = opt.NumQueries
	ccfg.Seed = opt.Seed
	ccfg.Workers = opt.Workers
	ccfg.FixedRes = fixed
	ds, err := workload.Collect(db, gen, ccfg)
	if err != nil {
		return nil, err
	}
	enc, err := ds.FitEncoder(encode.DefaultConfig())
	if err != nil {
		return nil, err
	}
	lab := &Lab{Opt: opt, DB: db, Dataset: ds, Enc: enc}
	lab.TrainRecs, lab.TestRecs = ds.SplitRecords(0.8, opt.Seed)
	lab.TrainSamples = lab.encodeRecords(lab.TrainRecs)
	lab.TestSamples = lab.encodeRecords(lab.TestRecs)
	return lab, nil
}

// Print renders the comparison.
func (r *Table5Result) Print(w io.Writer) {
	fprintf(w, "Table V: RAAL vs TLSTM (fixed resources)\n")
	fprintf(w, "%-8s %10s %10s %10s %10s\n", "model", "RE", "MSE", "COR", "R2")
	fprintf(w, "%-8s %10.4f %10.4f %10.4f %10.4f\n", "TLSTM", r.TLSTM.RE, r.TLSTM.MSE, r.TLSTM.COR, r.TLSTM.R2)
	fprintf(w, "%-8s %10.4f %10.4f %10.4f %10.4f\n", "RAAL", r.RAAL.RE, r.RAAL.MSE, r.RAAL.COR, r.RAAL.R2)
}

// Table6Result reproduces Table VI: RAAL vs the analytical GPSJ model.
type Table6Result struct {
	RAAL, GPSJ metrics.Result
}

// Table6 compares RAAL with GPSJ on the lab's test records.
func Table6(lab *Lab) (*Table6Result, error) {
	raal, err := lab.RAALModel()
	if err != nil {
		return nil, err
	}
	raalRes, err := raal.Evaluate(lab.TestSamples)
	if err != nil {
		return nil, err
	}

	g := baselines.NewGPSJ(lab.SimConfig())
	actual := make([]float64, len(lab.TestRecs))
	est := make([]float64, len(lab.TestRecs))
	actLog := make([]float64, len(lab.TestRecs))
	estLog := make([]float64, len(lab.TestRecs))
	for i, r := range lab.TestRecs {
		actual[i] = r.CostSec
		est[i] = g.Estimate(r.Plan, r.Res)
		actLog[i] = math.Log1p(actual[i])
		estLog[i] = math.Log1p(est[i])
	}
	gres, err := metrics.Evaluate(actual, est)
	if err != nil {
		return nil, err
	}
	gres.MSE = metrics.MSE(actLog, estLog)
	return &Table6Result{RAAL: raalRes, GPSJ: gres}, nil
}

// Print renders the comparison.
func (r *Table6Result) Print(w io.Writer) {
	fprintf(w, "Table VI: RAAL vs GPSJ\n")
	fprintf(w, "%-8s %10s %10s %10s %10s\n", "model", "RE", "MSE", "COR", "R2")
	fprintf(w, "%-8s %10.4f %10.4f %10.4f %10.4f\n", "GPSJ", r.GPSJ.RE, r.GPSJ.MSE, r.GPSJ.COR, r.GPSJ.R2)
	fprintf(w, "%-8s %10.4f %10.4f %10.4f %10.4f\n", "RAAL", r.RAAL.RE, r.RAAL.MSE, r.RAAL.COR, r.RAAL.R2)
}

// Table9Row is one model's online estimation latency.
type Table9Row struct {
	Model      string
	MsPer100   float64
}

// Table9Result reproduces Table IX: online estimation time per 100 queries.
type Table9Result struct {
	Rows []Table9Row
}

// Table9 measures batched inference latency of RAAL, TLSTM, and GPSJ on
// 100 test samples.
func Table9(lab *Lab) (*Table9Result, error) {
	n := 100
	if len(lab.TestSamples) < n {
		n = len(lab.TestSamples)
	}
	samples := lab.TestSamples[:n]
	recs := lab.TestRecs[:n]

	raal, err := lab.RAALModel()
	if err != nil {
		return nil, err
	}
	semDim := lab.Enc.NodeDim() - lab.Enc.MaxNodes() - 2
	tl := baselines.NewTLSTM(baselines.TLSTMConfig{
		SemDim: semDim, MaxNodes: lab.Enc.MaxNodes(), Hidden: 32, Seed: lab.Opt.Seed,
	})
	tcfg := lab.TrainConfig()
	if _, err := tl.Fit(lab.TrainSamples, 2, tcfg.Batch, tcfg.LR, tcfg.Seed); err != nil {
		return nil, err
	}
	g := baselines.NewGPSJ(lab.SimConfig())

	timeIt := func(f func()) float64 {
		// Warm once, then time the best of 3 runs.
		f()
		best := math.Inf(1)
		for i := 0; i < 3; i++ {
			start := time.Now()
			f()
			if d := float64(time.Since(start).Microseconds()) / 1000; d < best {
				best = d
			}
		}
		return best * 100 / float64(n)
	}

	out := &Table9Result{}
	out.Rows = append(out.Rows, Table9Row{"RAAL", timeIt(func() { raal.Predict(samples) })})
	out.Rows = append(out.Rows, Table9Row{"TLSTM", timeIt(func() { tl.Predict(samples) })})
	out.Rows = append(out.Rows, Table9Row{"GPSJ", timeIt(func() {
		for _, r := range recs {
			g.Estimate(r.Plan, r.Res)
		}
	})})
	return out, nil
}

// Print renders the latency table.
func (r *Table9Result) Print(w io.Writer) {
	fprintf(w, "Table IX: online estimation time per 100 queries (ms)\n")
	for _, row := range r.Rows {
		fprintf(w, "%-8s %10.3f\n", row.Model, row.MsPer100)
	}
}
