package experiments

import (
	"io"
	"math"
	"sort"

	"raal/internal/physical"
)

// QErrorRow summarizes cardinality estimation quality at one join depth.
type QErrorRow struct {
	Joins   int
	Plans   int
	Median  float64
	P90     float64
	Max     float64
}

// QErrorResult analyzes the optimizer's cardinality estimates against
// runtime truth per join count — the error source that cripples GPSJ
// (Table VI) and that the learned models absorb. This is the standard
// analysis of the learned-cardinality literature (Leis et al.'s "How Good
// Are Query Optimizers, Really?"), run on our substrate.
type QErrorResult struct {
	Rows []QErrorRow
}

// QError computes the q-error of every executed join operator in the
// lab's plans, grouped by the number of joins below it.
func QError(lab *Lab) (*QErrorResult, error) {
	if len(lab.Dataset.Plans) == 0 {
		return nil, errNoRecords
	}
	byDepth := map[int][]float64{}
	plansAt := map[int]map[*physical.Plan]bool{}
	for _, p := range lab.Dataset.Plans {
		joins := 0
		for _, n := range p.Nodes {
			switch n.Op {
			case physical.SortMergeJoin, physical.BroadcastHashJoin,
				physical.ShuffledHashJoin, physical.BroadcastNestedLoopJoin:
				joins++
				if n.ActRows > 0 && n.EstRows > 0 {
					q := n.EstRows / n.ActRows
					if q < 1 {
						q = 1 / q
					}
					byDepth[joins] = append(byDepth[joins], q)
					if plansAt[joins] == nil {
						plansAt[joins] = map[*physical.Plan]bool{}
					}
					plansAt[joins][p] = true
				}
			}
		}
	}
	out := &QErrorResult{}
	var depths []int
	for d := range byDepth {
		depths = append(depths, d)
	}
	sort.Ints(depths)
	for _, d := range depths {
		qs := byDepth[d]
		sort.Float64s(qs)
		out.Rows = append(out.Rows, QErrorRow{
			Joins:  d,
			Plans:  len(plansAt[d]),
			Median: quantile(qs, 0.5),
			P90:    quantile(qs, 0.9),
			Max:    qs[len(qs)-1],
		})
	}
	return out, nil
}

func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}

// Print renders the q-error table.
func (r *QErrorResult) Print(w io.Writer) {
	fprintf(w, "Cardinality q-error of join estimates by join depth\n")
	fprintf(w, "%-8s %8s %10s %10s %12s\n", "joins", "plans", "median", "p90", "max")
	for _, row := range r.Rows {
		fprintf(w, "%-8d %8d %10.2f %10.2f %12.2f\n", row.Joins, row.Plans, row.Median, row.P90, row.Max)
	}
	fprintf(w, "(estimation error compounds with join depth — the gap learned cost models absorb)\n")
}
