package experiments

import (
	"io"

	"raal/internal/cardest"
	"raal/internal/core"
	"raal/internal/encode"
	"raal/internal/engine"
	"raal/internal/logical"
	"raal/internal/physical"
	"raal/internal/sparksim"
	"raal/internal/sql"
	"raal/internal/workload"
)

// Fig1Row is one query of Fig. 1: execution time under the default
// rule-based cost model's plan choice vs the RAAL-tuned choice.
type Fig1Row struct {
	Query      int
	DefaultSec float64
	TunedSec   float64
}

// Fig1Result reproduces Fig. 1 (default vs optimized cost model on 20
// queries).
type Fig1Result struct {
	Rows []Fig1Row
}

// Fig1 trains RAAL on the lab's corpus, then compares plan choices on 20
// unseen queries under the default resource allocation.
func Fig1(lab *Lab) (*Fig1Result, error) {
	model, err := lab.RAALModel()
	if err != nil {
		return nil, err
	}
	return Fig1WithModel(lab, model)
}

// Fig1WithModel runs the comparison with an already-trained model.
func Fig1WithModel(lab *Lab, model *core.Model) (*Fig1Result, error) {
	est, err := cardest.New(lab.DB, 32, 16)
	if err != nil {
		return nil, err
	}
	planner := physical.NewPlanner(est)
	binder := logical.NewBinder(lab.DB)
	eng := engine.New(lab.DB)
	eng.MaxRows = 2_000_000
	sim := sparksim.New(lab.SimConfig())
	sim.Seed = lab.Opt.Seed

	var gen *workload.Generator
	if lab.Opt.Bench == "tpch" {
		gen, err = workload.NewTPCHGenerator(lab.DB, lab.Opt.Seed+101)
	} else {
		gen, err = workload.NewIMDBGenerator(lab.DB, lab.Opt.Seed+101)
	}
	if err != nil {
		return nil, err
	}

	res := sparksim.DefaultResources()
	out := &Fig1Result{}
	attempts := 0
	for len(out.Rows) < 20 && attempts < 400 {
		attempts++
		qs := gen.GenerateOne()
		stmt, err := sql.Parse(qs)
		if err != nil {
			continue
		}
		bound, err := binder.Bind(stmt)
		if err != nil {
			continue
		}
		plans, err := planner.Enumerate(bound)
		if err != nil {
			continue
		}
		if len(plans) > 3 {
			plans = plans[:3]
		}
		ok := true
		for _, p := range plans {
			if _, err := eng.Run(p); err != nil {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		// The default rule-based choice is the first enumerated plan
		// (greedy order + threshold joins + pushdown).
		defPlan := plans[0]

		// RAAL choice: encode every candidate under res, pick the
		// cheapest prediction.
		samples := make([]*encode.Sample, len(plans))
		for i, p := range plans {
			samples[i] = lab.Enc.EncodePlan(p, res)
		}
		preds := model.Predict(samples)
		bestIdx := 0
		for i := range preds {
			if preds[i] < preds[bestIdx] {
				bestIdx = i
			}
		}
		best := plans[bestIdx]

		defSec, err := sim.Estimate(defPlan, res)
		if err != nil {
			return nil, err
		}
		tunedSec, err := sim.Estimate(best, res)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, Fig1Row{Query: len(out.Rows) + 1, DefaultSec: defSec, TunedSec: tunedSec})
	}
	return out, nil
}

// TotalDefault sums the default-choice execution times.
func (r *Fig1Result) TotalDefault() float64 {
	var s float64
	for _, row := range r.Rows {
		s += row.DefaultSec
	}
	return s
}

// TotalTuned sums the tuned-choice execution times.
func (r *Fig1Result) TotalTuned() float64 {
	var s float64
	for _, row := range r.Rows {
		s += row.TunedSec
	}
	return s
}

// Print renders the figure data as a table.
func (r *Fig1Result) Print(w io.Writer) {
	fprintf(w, "Fig 1: query execution time, default cost model vs RAAL-tuned (seconds)\n")
	fprintf(w, "%-8s %12s %12s\n", "query", "default", "tuned")
	for _, row := range r.Rows {
		fprintf(w, "q%-7d %12.2f %12.2f\n", row.Query, row.DefaultSec, row.TunedSec)
	}
	if r.TotalDefault() > 0 {
		fprintf(w, "%-8s %12.2f %12.2f  (%.1f%% reduction)\n", "total",
			r.TotalDefault(), r.TotalTuned(), 100*(1-r.TotalTuned()/r.TotalDefault()))
	}
}
