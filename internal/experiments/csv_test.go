package experiments

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"
)

func TestFig2CSV(t *testing.T) {
	r, err := Fig2(0.05, 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(r.Points)+1 {
		t.Fatalf("csv rows %d, want %d", len(rows), len(r.Points)+1)
	}
	if strings.Join(rows[0], ",") != "query,plan,mem_gb,cost_sec" {
		t.Fatalf("header: %v", rows[0])
	}
	for _, row := range rows[1:] {
		if len(row) != 4 {
			t.Fatalf("bad row %v", row)
		}
	}
}

func TestSimAblationCSV(t *testing.T) {
	lab := quickLab(t)
	r, err := SimAblation(lab)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	// 3 configs × 12 memory sizes + header.
	if len(rows) != 3*12+1 {
		t.Fatalf("csv rows %d", len(rows))
	}
}

func TestAblationCSVCurves(t *testing.T) {
	lab := quickLab(t)
	r, err := Ablation(lab)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	want := 4*lab.Opt.Epochs + 1
	if len(rows) != want {
		t.Fatalf("csv rows %d, want %d", len(rows), want)
	}
}
