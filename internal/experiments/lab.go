// Package experiments regenerates every table and figure of the paper's
// evaluation (Sec. V) on the simulated substrate. Each experiment is a
// function returning a printable result; cmd/raalbench drives them and
// bench_test.go wraps them as Go benchmarks.
//
// Scaled-down defaults (documented per run in EXPERIMENTS.md): the paper
// collected 63K IMDB / 50K TPC-H records on real clusters and trained for
// hours on a GPU; the harness defaults to a few thousand records and
// ~30 CPU epochs, which preserves the comparisons' shape.
package experiments

import (
	"fmt"
	"io"

	"raal/internal/catalog"
	"raal/internal/core"
	"raal/internal/datagen"
	"raal/internal/encode"
	"raal/internal/sparksim"
	"raal/internal/workload"
)

// Options sizes an experiment run.
type Options struct {
	// Bench selects the benchmark: "imdb" (Tencent-cloud setting) or
	// "tpch" (Ali-cloud setting).
	Bench string
	// Scale is the synthetic data scale factor.
	Scale float64
	// NumQueries is the number of generated queries.
	NumQueries int
	// ResStates is the number of random resource states per plan.
	ResStates int
	// Epochs / LR drive model training.
	Epochs int
	LR     float64
	Seed   int64
	// Workers / ShardSize enable data-parallel training (see
	// core.TrainConfig); Workers also bounds concurrent plan execution
	// during collection. Zero keeps the serial trainer; Workers alone
	// never changes results, so experiments stay reproducible.
	Workers   int
	ShardSize int
}

// DefaultOptions returns the full-size harness settings.
func DefaultOptions() Options {
	return Options{Bench: "imdb", Scale: 0.1, NumQueries: 250, ResStates: 3, Epochs: 30, LR: 3e-3, Seed: 1}
}

// QuickOptions returns small settings for smoke tests.
func QuickOptions() Options {
	return Options{Bench: "imdb", Scale: 0.03, NumQueries: 60, ResStates: 2, Epochs: 8, LR: 5e-3, Seed: 1}
}

func (o Options) withDefaults() Options {
	d := DefaultOptions()
	if o.Bench == "" {
		o.Bench = d.Bench
	}
	if o.Scale == 0 {
		o.Scale = d.Scale
	}
	if o.NumQueries == 0 {
		o.NumQueries = d.NumQueries
	}
	if o.ResStates == 0 {
		o.ResStates = d.ResStates
	}
	if o.Epochs == 0 {
		o.Epochs = d.Epochs
	}
	if o.LR == 0 {
		o.LR = d.LR
	}
	if o.Seed == 0 {
		o.Seed = d.Seed
	}
	return o
}

// Lab is a prepared experiment environment: a benchmark database, a
// collected dataset, a fitted encoder, and aligned train/test splits.
type Lab struct {
	Opt     Options
	DB      *catalog.Database
	Dataset *workload.Dataset
	Enc     *encode.Encoder

	TrainRecs, TestRecs       []workload.Record
	TrainSamples, TestSamples []*encode.Sample

	// Cached trained models, shared by experiments that all need "a
	// trained RAAL" (fig1, table6, fig7, fig8, table9, ...).
	raalModel  *core.Model
	blindModel *core.Model
	ablation   *AblationResult
}

// RAALModel returns the lab's trained full RAAL, training it on first use.
func (l *Lab) RAALModel() (*core.Model, error) {
	if l.raalModel == nil {
		m, _, err := l.TrainVariant(core.RAAL())
		if err != nil {
			return nil, err
		}
		l.raalModel = m
	}
	return l.raalModel, nil
}

// BlindRAALModel returns the cached resource-blind RAAL twin.
func (l *Lab) BlindRAALModel() (*core.Model, error) {
	if l.blindModel == nil {
		m, _, err := l.TrainVariant(core.RAAL().WithoutResources())
		if err != nil {
			return nil, err
		}
		l.blindModel = m
	}
	return l.blindModel, nil
}

// NewLab generates data, collects records, and fits the encoder.
func NewLab(opt Options) (*Lab, error) {
	opt = opt.withDefaults()
	var db *catalog.Database
	var gen *workload.Generator
	var err error
	switch opt.Bench {
	case "imdb":
		db = datagen.IMDB(opt.Scale, opt.Seed)
		gen, err = workload.NewIMDBGenerator(db, opt.Seed)
	case "tpch":
		db = datagen.TPCH(opt.Scale, opt.Seed)
		gen, err = workload.NewTPCHGenerator(db, opt.Seed)
	default:
		return nil, fmt.Errorf("experiments: unknown benchmark %q", opt.Bench)
	}
	if err != nil {
		return nil, err
	}

	ccfg := workload.DefaultCollectConfig()
	ccfg.NumQueries = opt.NumQueries
	ccfg.ResStatesPerPlan = opt.ResStates
	ccfg.Seed = opt.Seed
	ccfg.Workers = opt.Workers
	ds, err := workload.Collect(db, gen, ccfg)
	if err != nil {
		return nil, err
	}

	enc, err := ds.FitEncoder(encode.DefaultConfig())
	if err != nil {
		return nil, err
	}

	lab := &Lab{Opt: opt, DB: db, Dataset: ds, Enc: enc}
	lab.TrainRecs, lab.TestRecs = ds.SplitRecords(0.8, opt.Seed)
	lab.TrainSamples = lab.encodeRecords(lab.TrainRecs)
	lab.TestSamples = lab.encodeRecords(lab.TestRecs)
	return lab, nil
}

func (l *Lab) encodeRecords(recs []workload.Record) []*encode.Sample {
	out := make([]*encode.Sample, len(recs))
	for i, r := range recs {
		s := l.Enc.EncodePlan(r.Plan, r.Res)
		s.CostSec = r.CostSec
		out[i] = s
	}
	return out
}

// ModelConfig returns the core model dimensions matching the lab's encoder.
func (l *Lab) ModelConfig() core.Config {
	semDim := l.Enc.NodeDim() - l.Enc.MaxNodes() - 2
	cfg := core.DefaultConfig(semDim, l.Enc.MaxNodes())
	cfg.Seed = l.Opt.Seed
	return cfg
}

// TrainConfig returns the training settings for this lab.
func (l *Lab) TrainConfig() core.TrainConfig {
	tc := core.DefaultTrainConfig()
	tc.Epochs = l.Opt.Epochs
	tc.LR = l.Opt.LR
	tc.Seed = l.Opt.Seed
	tc.Workers = l.Opt.Workers
	tc.ShardSize = l.Opt.ShardSize
	return tc
}

// TrainVariant trains one model variant on the lab's training split.
func (l *Lab) TrainVariant(v core.Variant) (*core.Model, *core.TrainResult, error) {
	return core.Train(l.TrainSamples, v, l.ModelConfig(), l.TrainConfig())
}

// SimConfig returns the simulator calibration used during collection.
func (l *Lab) SimConfig() sparksim.Config { return sparksim.DefaultConfig() }

// fprintf writes formatted output, ignoring errors (report printing).
func fprintf(w io.Writer, format string, args ...any) {
	fmt.Fprintf(w, format, args...)
}
