package experiments

import (
	"bytes"
	"math"
	"sync"
	"testing"
)

var (
	labOnce sync.Once
	labInst *Lab
	labErr  error
)

// quickLab builds one shared small lab for all tests.
func quickLab(t *testing.T) *Lab {
	t.Helper()
	labOnce.Do(func() {
		labInst, labErr = NewLab(QuickOptions())
	})
	if labErr != nil {
		t.Fatal(labErr)
	}
	return labInst
}

func TestNewLab(t *testing.T) {
	lab := quickLab(t)
	if len(lab.TrainSamples) == 0 || len(lab.TestSamples) == 0 {
		t.Fatalf("empty splits: %d/%d", len(lab.TrainSamples), len(lab.TestSamples))
	}
	if len(lab.TrainSamples) != len(lab.TrainRecs) || len(lab.TestSamples) != len(lab.TestRecs) {
		t.Fatal("records and samples misaligned")
	}
	if len(lab.TrainSamples) < len(lab.TestSamples) {
		t.Fatal("80/20 split inverted")
	}
}

func TestNewLabUnknownBench(t *testing.T) {
	opt := QuickOptions()
	opt.Bench = "mystery"
	if _, err := NewLab(opt); err == nil {
		t.Fatal("unknown benchmark should error")
	}
}

func TestFig2Phenomena(t *testing.T) {
	r, err := Fig2(0.2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Queries) != 4 {
		t.Fatalf("want the paper's 4 queries, got %d", len(r.Queries))
	}
	// Every query must have points for all memory sizes.
	if len(r.Points) < 4*2*8 {
		t.Fatalf("too few points: %d", len(r.Points))
	}
	// Costs must vary with memory for at least one plan series.
	varies := false
	series := map[string][]float64{}
	for _, p := range r.Points {
		k := p.Query + string(rune('0'+p.PlanID))
		series[k] = append(series[k], p.Sec)
	}
	for _, costs := range series {
		for i := 1; i < len(costs); i++ {
			if math.Abs(costs[i]-costs[0]) > 0.01*costs[0] {
				varies = true
			}
		}
	}
	if !varies {
		t.Fatal("memory has no effect on any plan cost")
	}
	changes := r.OptimalPlanChanges()
	if len(changes) != 4 {
		t.Fatalf("OptimalPlanChanges has %d queries", len(changes))
	}
	var buf bytes.Buffer
	r.Print(&buf)
	if buf.Len() == 0 {
		t.Fatal("empty report")
	}
}

func TestAblationTable4Fig6(t *testing.T) {
	lab := quickLab(t)
	r, err := Ablation(lab)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("want 4 variants, got %d", len(r.Rows))
	}
	names := map[string]bool{}
	for _, row := range r.Rows {
		names[row.Name] = true
		if math.IsNaN(row.Metrics.MSE) || row.Metrics.MSE < 0 {
			t.Fatalf("%s: bad MSE %v", row.Name, row.Metrics.MSE)
		}
		curve := r.Curves[row.Name]
		if len(curve) != lab.Opt.Epochs {
			t.Fatalf("%s: curve length %d", row.Name, len(curve))
		}
		if curve[len(curve)-1] >= curve[0] {
			t.Fatalf("%s: loss did not decrease: %v", row.Name, curve)
		}
	}
	for _, want := range []string{"RAAL", "NE-LSTM", "NA-LSTM", "RAAC"} {
		if !names[want] {
			t.Fatalf("missing variant %s", want)
		}
	}
	var buf bytes.Buffer
	r.Print(&buf)
	if buf.Len() == 0 {
		t.Fatal("empty report")
	}
}

func TestTable6GPSJWorse(t *testing.T) {
	lab := quickLab(t)
	r, err := Table6(lab)
	if err != nil {
		t.Fatal(err)
	}
	// The hand-crafted model must lose to the learned one (paper's
	// central claim for Table VI).
	if r.GPSJ.MSE <= r.RAAL.MSE {
		t.Fatalf("GPSJ MSE %v should exceed RAAL %v", r.GPSJ.MSE, r.RAAL.MSE)
	}
	var buf bytes.Buffer
	r.Print(&buf)
	if buf.Len() == 0 {
		t.Fatal("empty report")
	}
}

func TestFig8Rows(t *testing.T) {
	lab := quickLab(t)
	r, err := Fig8(lab)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 6 {
		t.Fatalf("want 6 memory environments, got %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if math.IsNaN(row.Metrics.RE) {
			t.Fatalf("NaN metrics at %vGB", row.MemGB)
		}
	}
}

func TestTable8Scaling(t *testing.T) {
	lab := quickLab(t)
	r, err := Table8(lab)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) < 3 {
		t.Fatalf("too few size levels: %d", len(r.Rows))
	}
	for i := 1; i < len(r.Rows); i++ {
		if r.Rows[i].TrainSize <= r.Rows[i-1].TrainSize {
			t.Fatal("train sizes not increasing")
		}
	}
}

func TestTable9Latency(t *testing.T) {
	lab := quickLab(t)
	r, err := Table9(lab)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("want 3 models, got %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.MsPer100 <= 0 {
			t.Fatalf("%s latency %v", row.Model, row.MsPer100)
		}
	}
}

func TestSimAblation(t *testing.T) {
	lab := quickLab(t)
	r, err := SimAblation(lab)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("want 3 configs, got %d", len(r.Rows))
	}
	// Removing cache and GC must shrink memory sensitivity.
	full := r.Rows[0].SpreadPct
	bare := r.Rows[2].SpreadPct
	if bare >= full {
		t.Fatalf("mechanism-free simulator should be less memory sensitive: %v vs %v", bare, full)
	}
}

func TestRegistryLookup(t *testing.T) {
	names := Names()
	if len(names) < 12 {
		t.Fatalf("registry too small: %v", names)
	}
	for _, n := range names {
		if _, err := Lookup(n); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := Lookup("nope"); err == nil {
		t.Fatal("unknown name should error")
	}
}

func TestOptionsDefaults(t *testing.T) {
	opt := Options{}
	d := opt.withDefaults()
	if d.Bench != "imdb" || d.Epochs == 0 || d.Scale == 0 {
		t.Fatalf("defaults not applied: %+v", d)
	}
}
