package experiments

import (
	"bytes"
	"math"
	"testing"
)

func TestTransferColdStart(t *testing.T) {
	opt := QuickOptions()
	opt.NumQueries = 40
	opt.Epochs = 6
	r, err := Transfer(opt)
	if err != nil {
		t.Fatal(err)
	}
	for name, m := range map[string]float64{
		"native":    r.Native.MSE,
		"zero-shot": r.ZeroShot.MSE,
		"fine-tune": r.FineTuned.MSE,
	} {
		if math.IsNaN(m) || m < 0 {
			t.Fatalf("%s MSE invalid: %v", name, m)
		}
	}
	if r.FineTuneN <= 0 {
		t.Fatal("fine-tuning set empty")
	}
	// Fine-tuning on target data must not be worse than zero-shot by a
	// wide margin (it starts from the zero-shot weights).
	if r.FineTuned.MSE > r.ZeroShot.MSE*1.5 {
		t.Fatalf("fine-tuning regressed badly: %v vs %v", r.FineTuned.MSE, r.ZeroShot.MSE)
	}
	var buf bytes.Buffer
	r.Print(&buf)
	if buf.Len() == 0 {
		t.Fatal("empty report")
	}
}
