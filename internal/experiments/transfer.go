package experiments

import (
	"bytes"
	"io"

	"raal/internal/core"
	"raal/internal/encode"
	"raal/internal/metrics"
	"raal/internal/workload"
)

// TransferResult explores the paper's stated future work (Sec. VI):
// cold-start cost estimation on a newly loaded dataset without training a
// new model. We train RAAL on IMDB, apply it zero-shot to TPC-H (re-using
// the IMDB-fitted word2vec encoder, whose OOV handling absorbs unseen
// tables), then fine-tune on a small TPC-H slice.
type TransferResult struct {
	Native    metrics.Result // RAAL trained on TPC-H, the ceiling
	ZeroShot  metrics.Result // IMDB-trained RAAL applied to TPC-H cold
	FineTuned metrics.Result // + a few epochs on 20% of TPC-H data
	FineTuneN int            // fine-tuning sample count
}

// Transfer runs the cold-start study at the given options (Bench is
// ignored: the source is always IMDB and the target TPC-H).
func Transfer(opt Options) (*TransferResult, error) {
	opt = opt.withDefaults()

	srcOpt := opt
	srcOpt.Bench = "imdb"
	src, err := NewLab(srcOpt)
	if err != nil {
		return nil, err
	}
	dstOpt := opt
	dstOpt.Bench = "tpch"
	dstOpt.Seed = opt.Seed + 50
	dst, err := NewLab(dstOpt)
	if err != nil {
		return nil, err
	}

	out := &TransferResult{}

	// Ceiling: a TPC-H-native model.
	nativeModel, err := dst.RAALModel()
	if err != nil {
		return nil, err
	}
	if out.Native, err = nativeModel.Evaluate(dst.TestSamples); err != nil {
		return nil, err
	}

	// Zero-shot: IMDB-trained model, IMDB-fitted encoder, TPC-H plans.
	srcModel, err := src.RAALModel()
	if err != nil {
		return nil, err
	}
	encodeWithSrc := func(recs []workload.Record) []*encode.Sample {
		outS := make([]*encode.Sample, len(recs))
		for i, r := range recs {
			s := src.Enc.EncodePlan(r.Plan, r.Res)
			s.CostSec = r.CostSec
			outS[i] = s
		}
		return outS
	}
	dstTest := encodeWithSrc(dst.TestRecs)
	if out.ZeroShot, err = srcModel.Evaluate(dstTest); err != nil {
		return nil, err
	}

	// Fine-tune a copy of the source model on 20% of TPC-H training data.
	ftModel := cloneModel(srcModel)
	n := len(dst.TrainRecs) / 5
	if n < 10 {
		n = len(dst.TrainRecs)
	}
	ftTrain := encodeWithSrc(dst.TrainRecs[:n])
	tc := src.TrainConfig()
	tc.Epochs = maxInt(3, tc.Epochs/3)
	if _, err := ftModel.Fit(ftTrain, tc); err != nil {
		return nil, err
	}
	out.FineTuneN = n
	if out.FineTuned, err = ftModel.Evaluate(dstTest); err != nil {
		return nil, err
	}
	return out, nil
}

// cloneModel deep-copies a model through its serialization.
func cloneModel(m *core.Model) *core.Model {
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		panic(err) // in-memory serialization of a valid model cannot fail
	}
	clone, err := core.LoadModel(&buf)
	if err != nil {
		panic(err)
	}
	return clone
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Print renders the three-way comparison.
func (r *TransferResult) Print(w io.Writer) {
	fprintf(w, "Cold-start transfer: IMDB-trained RAAL applied to TPC-H\n")
	fprintf(w, "%-24s %10s %10s %10s %10s\n", "setting", "RE", "MSE", "COR", "R2")
	row := func(name string, m metrics.Result) {
		fprintf(w, "%-24s %10.4f %10.4f %10.4f %10.4f\n", name, m.RE, m.MSE, m.COR, m.R2)
	}
	row("zero-shot (cold)", r.ZeroShot)
	row("fine-tuned", r.FineTuned)
	row("native (ceiling)", r.Native)
	fprintf(w, "(fine-tuned on %d target samples)\n", r.FineTuneN)
}
