package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"testing"

	"raal/internal/core"
	"raal/internal/encode"
	"raal/internal/sparksim"
	"raal/internal/tensor"
)

// JSONer is implemented by reports that can export machine-readable data.
// cmd/raalbench writes these as BENCH_<name>.json; cmd/benchdiff compares
// two such files and fails on regressions.
type JSONer interface {
	JSON(w io.Writer) error
}

// MicroBench is one measured hot-path operation.
type MicroBench struct {
	Name     string  `json:"name"`
	NsOp     float64 `json:"ns_op"`
	AllocsOp float64 `json:"allocs_op"`
	BytesOp  float64 `json:"bytes_op"`
	N        int     `json:"n"` // benchmark iterations behind the averages
}

// MicroResult is the hot-path microbenchmark report: inference and
// training throughput on the synthetic corpus, with allocation counts.
type MicroResult struct {
	Benchmarks []MicroBench `json:"benchmarks"`
}

// Print renders the benchmark table.
func (r *MicroResult) Print(w io.Writer) {
	fmt.Fprintf(w, "%-24s %14s %12s %12s %8s\n", "benchmark", "ns/op", "B/op", "allocs/op", "n")
	for _, b := range r.Benchmarks {
		fmt.Fprintf(w, "%-24s %14.0f %12.0f %12.1f %8d\n", b.Name, b.NsOp, b.BytesOp, b.AllocsOp, b.N)
	}
}

// JSON writes the machine-readable form consumed by cmd/benchdiff.
func (r *MicroResult) JSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Synthetic-sample dimensions, mirroring the core package's benchmark
// fixture so the micro numbers track the tier-1 BenchmarkPredict shape.
const (
	microSem   = 4
	microNodes = 6
	microStats = 6
)

// microSample fabricates an encoded plan whose cost depends on both node
// content and the resource vector (the same construction the core tests
// benchmark against).
func microSample(rng *rand.Rand) *encode.Sample {
	dim := microSem + microNodes + 2
	s := &encode.Sample{
		Nodes:    tensor.New(microNodes, dim),
		Mask:     make([]bool, microNodes),
		Children: make([][]bool, microNodes),
		Resource: make([]float64, sparksim.NumFeatures),
		Stats:    make([]float64, microStats),
	}
	n := 3 + rng.Intn(microNodes-2)
	for i := 0; i < microNodes; i++ {
		s.Children[i] = make([]bool, microNodes)
	}
	var nodeSig float64
	for i := 0; i < n; i++ {
		s.Mask[i] = true
		row := s.Nodes.Row(i)
		for d := 0; d < microSem; d++ {
			row[d] = rng.Float64()
			nodeSig += row[d]
		}
		if i > 0 { // chain structure
			row[microSem+i-1] = 1
			s.Children[i][i-1] = true
			s.Nodes.Row(i - 1)[microSem+i] = -1
		}
		row[microSem+microNodes] = rng.Float64()
		row[microSem+microNodes+1] = rng.Float64()
	}
	for j := range s.Resource {
		s.Resource[j] = rng.Float64()
	}
	for j := range s.Stats {
		s.Stats[j] = rng.Float64()
	}
	mem := s.Resource[4]
	s.CostSec = 2 + nodeSig + 12*(mem-0.5)*(mem-0.5) + 0.5*s.Stats[0]
	return s
}

func microDataset(n int, seed int64) []*encode.Sample {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*encode.Sample, n)
	for i := range out {
		out[i] = microSample(rng)
	}
	return out
}

// Micro benchmarks the serving hot path — batch inference at 1 and 4
// workers, plus one training epoch — on a small RAAL model over synthetic
// samples. It needs no lab: the point is kernel and allocator throughput,
// not model quality, and the synthetic corpus keeps a run under a minute.
func Micro(opt Options) (*MicroResult, error) {
	samples := microDataset(512, 77)
	cfg := core.DefaultConfig(microSem, microNodes)
	cfg.Hidden = 16
	cfg.K = 8
	cfg.Seed = opt.Seed
	tc := core.DefaultTrainConfig()
	tc.Epochs = 1
	tc.Batch = 16
	tc.LR = 5e-3
	tc.Seed = opt.Seed

	m, _, err := core.Train(samples[:128], core.RAAL(), cfg, tc)
	if err != nil {
		return nil, err
	}

	res := &MicroResult{}
	for _, workers := range []int{1, 4} {
		po := core.PredictOpts{Workers: workers, ChunkSize: 32}
		br := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				m.PredictWith(samples, po)
			}
		})
		res.Benchmarks = append(res.Benchmarks, toMicroBench(fmt.Sprintf("predict/workers=%d", workers), br))
	}

	ftc := tc
	ftc.Batch = 32
	ftc.ShardSize = 4
	fm := core.NewModel(core.RAAL(), cfg)
	br := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := fm.Fit(samples[:256], ftc); err != nil {
				b.Fatal(err)
			}
		}
	})
	res.Benchmarks = append(res.Benchmarks, toMicroBench("fit/workers=1", br))
	return res, nil
}

func toMicroBench(name string, r testing.BenchmarkResult) MicroBench {
	return MicroBench{
		Name:     name,
		NsOp:     float64(r.NsPerOp()),
		AllocsOp: float64(r.AllocsPerOp()),
		BytesOp:  float64(r.AllocedBytesPerOp()),
		N:        r.N,
	}
}
