package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"sync"
	"time"

	"raal/internal/core"
	"raal/internal/encode"
	"raal/internal/physical"
	"raal/internal/serve"
	"raal/internal/sparksim"
	"raal/internal/telemetry"
)

// ServeBench is one serving-throughput measurement: a closed-loop client
// swarm against a serve.Server, with micro-batching on or off. The
// leading fields match the benchdiff schema (cmd/benchdiff ignores the
// extras), so BENCH_serve.json can gate regressions like BENCH_micro.
type ServeBench struct {
	Name     string  `json:"name"`
	NsOp     float64 `json:"ns_op"` // mean wall time per request
	AllocsOp float64 `json:"allocs_op"`
	BytesOp  float64 `json:"bytes_op"`
	N        int     `json:"n"` // total requests behind the averages

	Clients int     `json:"clients"`
	Batch   string  `json:"batch"` // "on" or "off"
	QPS     float64 `json:"qps"`
	P50Ms   float64 `json:"p50_ms"`
	P99Ms   float64 `json:"p99_ms"`
	// Batching-path diagnostics (zero when batching is off): mean live
	// requests per flushed batch, and the fraction of requests answered
	// by an identical in-flight batch-mate's computation (singleflight
	// dedup on the hot keys).
	MeanBatch float64 `json:"mean_batch,omitempty"`
	DedupFrac float64 `json:"dedup_frac,omitempty"`
}

// ServeResult is the serving-throughput report.
type ServeResult struct {
	Benchmarks []ServeBench `json:"benchmarks"`
}

// Print renders the throughput table with the batching speedup per
// concurrency level.
func (r *ServeResult) Print(w io.Writer) {
	fmt.Fprintf(w, "%-26s %9s %9s %9s %8s %7s %7s %9s\n",
		"workload", "qps", "p50 ms", "p99 ms", "ns/req", "batch", "dedup", "speedup")
	offQPS := map[int]float64{}
	for _, b := range r.Benchmarks {
		if b.Batch == "off" {
			offQPS[b.Clients] = b.QPS
		}
	}
	for _, b := range r.Benchmarks {
		speedup, batch, dedup := "-", "-", "-"
		if b.Batch == "on" {
			if offQPS[b.Clients] > 0 {
				speedup = fmt.Sprintf("%.2fx", b.QPS/offQPS[b.Clients])
			}
			batch = fmt.Sprintf("%.1f", b.MeanBatch)
			dedup = fmt.Sprintf("%.0f%%", 100*b.DedupFrac)
		}
		fmt.Fprintf(w, "%-26s %9.0f %9.3f %9.3f %8.0f %7s %7s %9s\n",
			b.Name, b.QPS, b.P50Ms, b.P99Ms, b.NsOp, batch, dedup, speedup)
	}
}

// JSON writes the machine-readable form consumed by cmd/benchdiff.
func (r *ServeResult) JSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Workload shape. Every concurrency level serves the same total request
// count, so QPS across rows is comparable. Query popularity is skewed
// the way production query logs are: most traffic hits a small hot set
// (dashboards, canned reports), the rest spreads over a long tail. The
// hot keys resolve to shared plan objects — the plan cache's behavior —
// which is what lets the coalescer singleflight identical in-flight
// requests.
const (
	serveTotalRequests = 4096
	serveWarmup        = 64
	serveBatchWindow   = 2 * time.Millisecond
	serveKeySpace      = 256 // distinct queries in the workload
	serveHotKeys       = 4   // the hot set
	serveHotPermille   = 900 // share of requests hitting the hot set
)

var serveClientLevels = []int{1, 4, 16, 32}

// Serve measures end-to-end serving throughput of the robustness stack
// with dynamic micro-batching on vs off, at several closed-loop client
// counts. The deep path is a default-shape trained RAAL model over
// pre-encoded plans (a plan-cache-warm serving tier), so the measured
// difference is the estimation pipeline itself: per-request forward
// passes versus coalesced batched passes with in-batch deduplication of
// the hot queries. Most of the batching win on this workload is the
// dedup — on one core a forward pass is the same arithmetic batched or
// not, so coalescing alone only amortizes the small per-call fixed cost
// (tape and graph setup), while singleflighting the hot keys removes
// whole forward passes.
func Serve(opt Options) (*ServeResult, error) {
	samples := microDataset(serveKeySpace, 77)
	cfg := core.DefaultConfig(microSem, microNodes)
	cfg.Seed = opt.Seed
	tc := core.DefaultTrainConfig()
	tc.Epochs = 1
	tc.Batch = 16
	tc.LR = 5e-3
	tc.Seed = opt.Seed
	m, _, err := core.Train(samples[:128], core.RAAL(), cfg, tc)
	if err != nil {
		return nil, err
	}

	// The request population: one immutable plan object per query, as a
	// plan cache hands out, mapped to its pre-encoded sample.
	plans := make([]*physical.Plan, serveKeySpace)
	bySig := make(map[string]*encode.Sample, serveKeySpace)
	for i, s := range samples {
		plans[i] = &physical.Plan{Sig: fmt.Sprintf("q%d", i)}
		bySig[plans[i].Sig] = s
	}

	res := &ServeResult{}
	for _, clients := range serveClientLevels {
		for _, batch := range []bool{false, true} {
			b, err := runServeLoad(m, bySig, plans, clients, batch)
			if err != nil {
				return nil, err
			}
			res.Benchmarks = append(res.Benchmarks, b)
		}
	}
	return res, nil
}

// pickPlan draws from the skewed popularity distribution.
func pickPlan(rng *rand.Rand, plans []*physical.Plan) *physical.Plan {
	if rng.Intn(1000) < serveHotPermille {
		return plans[rng.Intn(serveHotKeys)]
	}
	return plans[serveHotKeys+rng.Intn(len(plans)-serveHotKeys)]
}

// runServeLoad drives one (clients, batching) cell: a closed-loop swarm
// where each client issues its share of serveTotalRequests back to back.
func runServeLoad(m *core.Model, bySig map[string]*encode.Sample, plans []*physical.Plan, clients int, batch bool) (ServeBench, error) {
	po := core.PredictOpts{Workers: 1}
	met := serve.NewMetrics(telemetry.NewRegistry())
	scfg := serve.Config{
		Concurrency: clients,
		QueueDepth:  clients,
		Metrics:     met,
	}
	name := fmt.Sprintf("serve/clients=%d/batch=off", clients)
	scfg.Deep = func(ctx context.Context, p *physical.Plan, _ sparksim.Resources) (float64, error) {
		preds, err := m.PredictCtx(ctx, []*encode.Sample{bySig[p.Sig]}, po)
		if err != nil {
			return 0, err
		}
		return preds[0], nil
	}
	if batch {
		name = fmt.Sprintf("serve/clients=%d/batch=on", clients)
		scfg.BatchWindow = serveBatchWindow
		scfg.BatchMax = clients
		if scfg.BatchMax < 2 {
			scfg.BatchMax = 2
		}
		scfg.DeepEach = func(ctx context.Context, items []serve.BatchItem) ([]float64, error) {
			ss := make([]*encode.Sample, len(items))
			for i, it := range items {
				ss[i] = bySig[it.Plan.Sig]
			}
			return m.PredictCtx(ctx, ss, po)
		}
	}
	srv, err := serve.New(scfg)
	if err != nil {
		return ServeBench{}, err
	}

	perClient := serveTotalRequests / clients
	run := func(requests int, durs []time.Duration) error {
		var wg sync.WaitGroup
		errs := make([]error, clients)
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(1000*clients + c)))
				for i := 0; i < requests; i++ {
					p := pickPlan(rng, plans)
					t0 := time.Now()
					_, err := srv.Estimate(context.Background(), p, sparksim.Resources{})
					if err != nil {
						errs[c] = fmt.Errorf("client %d request %d: %w", c, i, err)
						return
					}
					if durs != nil {
						durs[c*requests+i] = time.Since(t0)
					}
				}
			}(c)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		return nil
	}

	warm := serveWarmup / clients
	if warm < 1 {
		warm = 1
	}
	if err := run(warm, nil); err != nil {
		return ServeBench{}, err
	}
	batchedBefore, dedupBefore := met.BatchSize.Count(), met.BatchDeduped.Value()
	durs := make([]time.Duration, clients*perClient)
	start := time.Now()
	if err := run(perClient, durs); err != nil {
		return ServeBench{}, err
	}
	elapsed := time.Since(start)
	if err := srv.Drain(context.Background()); err != nil {
		return ServeBench{}, err
	}

	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	total := len(durs)
	var sum time.Duration
	for _, d := range durs {
		sum += d
	}
	pct := func(p float64) float64 {
		idx := int(p * float64(total-1))
		return float64(durs[idx]) / float64(time.Millisecond)
	}
	b := ServeBench{
		Name:    name,
		NsOp:    float64(sum.Nanoseconds()) / float64(total),
		N:       total,
		Clients: clients,
		Batch:   map[bool]string{true: "on", false: "off"}[batch],
		QPS:     float64(total) / elapsed.Seconds(),
		P50Ms:   pct(0.50),
		P99Ms:   pct(0.99),
	}
	if batch {
		if flushes := met.BatchSize.Count() - batchedBefore; flushes > 0 {
			b.MeanBatch = float64(total) / float64(flushes)
		}
		b.DedupFrac = float64(met.BatchDeduped.Value()-dedupBefore) / float64(total)
	}
	return b, nil
}
