package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"raal/internal/core"
	"raal/internal/encode"
	"raal/internal/fleet"
	"raal/internal/physical"
	"raal/internal/serve"
	"raal/internal/sparksim"
	"raal/internal/telemetry"
)

// FleetBench is one fleet-routing measurement: a closed-loop client
// swarm against a fleet.Router over N real serve replicas (full HTTP
// stack on loopback listeners). The leading fields match the benchdiff
// schema so BENCH_fleet.json can gate regressions.
type FleetBench struct {
	Name string  `json:"name"`
	NsOp float64 `json:"ns_op"` // mean wall time per request
	N    int     `json:"n"`

	Replicas int     `json:"replicas"`
	Kill     string  `json:"kill"` // "none" or "mid-run"
	QPS      float64 `json:"qps"`
	P50Ms    float64 `json:"p50_ms"`
	P99Ms    float64 `json:"p99_ms"`
	// Availability is the fraction of requests answered 200 (deep or
	// degraded) — the zero-loss invariant says it stays 1.0 even with a
	// replica killed mid-run.
	Availability float64 `json:"availability"`
	DeepFrac     float64 `json:"deep_frac"`
	DegradedFrac float64 `json:"degraded_frac"`
	// Robustness-machinery counters for the run.
	Retries   uint64 `json:"retries"`
	Failovers uint64 `json:"failovers"`
	Hedges    uint64 `json:"hedges_fired"`
	// Affinity effectiveness, measured from the replicas' own /cachez
	// per-key hit attribution after the run (survivors only on kill
	// runs). CacheHitRate is the fleet-wide fraction of deep lookups
	// served from an already-warm encode-cache entry; AffinityHitFrac is
	// the fraction of deep lookups that landed on the key's home replica
	// (the one that served that key most) — 1.0 means consistent-hash
	// routing kept every key on a single warm cache.
	CacheHitRate    float64 `json:"cache_hit_rate"`
	AffinityHitFrac float64 `json:"affinity_hit_frac"`
}

// FleetResult is the fleet scaling + availability report.
type FleetResult struct {
	Benchmarks []FleetBench `json:"benchmarks"`
}

// Print renders the scaling table with the 1-replica baseline speedup.
func (r *FleetResult) Print(w io.Writer) {
	fmt.Fprintf(w, "%-28s %9s %9s %9s %7s %6s %6s %9s %6s %6s %6s %6s\n",
		"workload", "qps", "p50 ms", "p99 ms", "avail", "deep", "degr", "failover", "hedge", "cache", "affin", "scale")
	var base float64
	for _, b := range r.Benchmarks {
		if b.Replicas == 1 && b.Kill == "none" {
			base = b.QPS
		}
	}
	for _, b := range r.Benchmarks {
		scale := "-"
		if base > 0 && !(b.Replicas == 1 && b.Kill == "none") {
			scale = fmt.Sprintf("%.2fx", b.QPS/base)
		}
		fmt.Fprintf(w, "%-28s %9.0f %9.3f %9.3f %7.3f %6.2f %6.2f %9d %6d %6.2f %6.2f %6s\n",
			b.Name, b.QPS, b.P50Ms, b.P99Ms, b.Availability, b.DeepFrac, b.DegradedFrac,
			b.Failovers, b.Hedges, b.CacheHitRate, b.AffinityHitFrac, scale)
	}
}

// JSON writes the machine-readable form consumed by cmd/benchdiff.
func (r *FleetResult) JSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Workload shape: same skewed popularity as the serve experiment, but
// driven through the router's full HTTP path, so affinity routing keeps
// each hot key on one replica.
const (
	fleetTotalRequests = 2048
	fleetClients       = 16
	fleetKeySpace      = 128
	fleetFallbackCost  = 9.0
)

var fleetReplicaLevels = []int{1, 2, 3}

// Fleet measures router scaling (1 → N replicas, each a real serve
// stack over a trained model on its own loopback listener) and
// availability under failure (the N=3 run repeated with one replica
// hard-killed mid-run: the zero-loss invariant keeps availability at
// 1.0 while failovers and degraded answers absorb the dead capacity).
// All replicas share this machine's cores, so QPS stays roughly flat
// across replica counts — the column that matters is availability; on
// real hardware each replica would bring its own cores.
func Fleet(opt Options) (*FleetResult, error) {
	samples := microDataset(fleetKeySpace, 77)
	cfg := core.DefaultConfig(microSem, microNodes)
	cfg.Seed = opt.Seed
	tc := core.DefaultTrainConfig()
	tc.Epochs = 1
	tc.Batch = 16
	tc.LR = 5e-3
	tc.Seed = opt.Seed
	m, _, err := core.Train(samples[:128], core.RAAL(), cfg, tc)
	if err != nil {
		return nil, err
	}

	plans := make([]*physical.Plan, fleetKeySpace)
	bySig := make(map[string]*encode.Sample, fleetKeySpace)
	for i, s := range samples {
		plans[i] = &physical.Plan{Sig: fmt.Sprintf("q%d", i)}
		bySig[plans[i].Sig] = s
	}

	res := &FleetResult{}
	for _, n := range fleetReplicaLevels {
		b, err := runFleetLoad(m, bySig, plans, n, false)
		if err != nil {
			return nil, err
		}
		res.Benchmarks = append(res.Benchmarks, b)
	}
	b, err := runFleetLoad(m, bySig, plans, 3, true)
	if err != nil {
		return nil, err
	}
	res.Benchmarks = append(res.Benchmarks, b)
	return res, nil
}

// fleetFingerprint mirrors the router's default affinity key (plan
// signature + resource vector) so the replica attributes its cache
// entries under the exact key the router hashed on.
func fleetFingerprint(p *physical.Plan, res sparksim.Resources) string {
	var b strings.Builder
	b.WriteString(p.Sig)
	for _, v := range res.Vector() {
		fmt.Fprintf(&b, ",%g", v)
	}
	return b.String()
}

// fleetCache is the experiment replica's stand-in for the encode cache:
// a per-routed-key lookup counter. The first lookup of a key is the
// encode miss that populates the entry; every later lookup is a hit the
// warm entry serves. Its stats() is what the replica exposes on /cachez.
type fleetCache struct {
	mu      sync.Mutex
	lookups map[string]uint64
}

func (c *fleetCache) touch(key string) {
	c.mu.Lock()
	c.lookups[key]++
	c.mu.Unlock()
}

func (c *fleetCache) stats() []serve.CacheKeyStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]serve.CacheKeyStats, 0, len(c.lookups))
	for k, n := range c.lookups {
		out = append(out, serve.CacheKeyStats{Key: k, Hits: n - 1})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// fleetReplica is one real serving stack on a loopback listener.
type fleetReplica struct {
	srv   *serve.Server
	ts    *httptest.Server
	cache *fleetCache
}

func newFleetReplica(m *core.Model, bySig map[string]*encode.Sample, planner serve.PlanFunc) (*fleetReplica, error) {
	po := core.PredictOpts{Workers: 1}
	cache := &fleetCache{lookups: make(map[string]uint64)}
	srv, err := serve.New(serve.Config{
		Deep: func(ctx context.Context, p *physical.Plan, res sparksim.Resources) (float64, error) {
			cache.touch(fleetFingerprint(p, res))
			preds, err := m.PredictCtx(ctx, []*encode.Sample{bySig[p.Sig]}, po)
			if err != nil {
				return 0, err
			}
			return preds[0], nil
		},
		Concurrency: fleetClients,
		QueueDepth:  fleetClients,
	})
	if err != nil {
		return nil, err
	}
	h, err := serve.NewHandler(srv, serve.HTTPConfig{Planner: planner, CacheStats: cache.stats})
	if err != nil {
		return nil, err
	}
	return &fleetReplica{srv: srv, ts: httptest.NewServer(h), cache: cache}, nil
}

// scrapeAffinity fetches every surviving replica's /cachez and reduces
// the per-key attributions to the two fleet-level affinity numbers: the
// warm-hit rate and the fraction of lookups that landed on each key's
// home replica. A killed replica's listener is gone, so kill runs score
// survivors only — exactly the state an operator could observe.
func scrapeAffinity(client *http.Client, reps []*fleetReplica, dead int) (hitRate, affinityFrac float64) {
	perKey := make(map[string][]uint64) // lookups per replica that saw the key
	var hits, lookups uint64
	for i, r := range reps {
		if i == dead {
			continue
		}
		resp, err := client.Get(r.ts.URL + "/cachez")
		if err != nil {
			continue
		}
		var cs serve.CacheStatsResponse
		derr := json.NewDecoder(resp.Body).Decode(&cs)
		resp.Body.Close()
		if derr != nil {
			continue
		}
		for _, k := range cs.Keys {
			n := k.Hits + 1 // hits + the populating miss
			perKey[k.Key] = append(perKey[k.Key], n)
			hits += k.Hits
			lookups += n
		}
	}
	if lookups == 0 {
		return 0, 0
	}
	var home uint64
	for _, counts := range perKey {
		var max uint64
		for _, n := range counts {
			if n > max {
				max = n
			}
		}
		home += max
	}
	return float64(hits) / float64(lookups), float64(home) / float64(lookups)
}

// runFleetLoad drives one (replicas, kill) cell.
func runFleetLoad(m *core.Model, bySig map[string]*encode.Sample, plans []*physical.Plan, nReplicas int, kill bool) (FleetBench, error) {
	planner := func(sql string) ([]*physical.Plan, error) {
		for _, p := range plans {
			if p.Sig == sql {
				return []*physical.Plan{p}, nil
			}
		}
		return nil, fmt.Errorf("unknown query %q", sql)
	}

	reps := make([]*fleetReplica, nReplicas)
	members := make([]fleet.Replica, nReplicas)
	ids := make([]string, nReplicas)
	for i := range reps {
		r, err := newFleetReplica(m, bySig, planner)
		if err != nil {
			return FleetBench{}, err
		}
		reps[i] = r
		ids[i] = fmt.Sprintf("r%d", i)
		members[i] = fleet.Replica{ID: ids[i], URL: r.ts.URL}
	}
	met := fleet.NewMetrics(telemetry.NewRegistry(), ids)
	router, err := fleet.New(fleet.Config{
		Replicas:         members,
		Planner:          planner,
		HealthInterval:   20 * time.Millisecond,
		DownAfter:        2,
		UpAfter:          1,
		RetryAttempts:    2,
		AttemptTimeout:   5 * time.Second,
		BreakerThreshold: 3,
		BreakerCooldown:  100 * time.Millisecond,
		HedgeAfter:       0, // adaptive p99
		Seed:             11,
		Metrics:          met,
		Fallback: func(_ context.Context, _ *physical.Plan, _ sparksim.Resources) (float64, error) {
			return fleetFallbackCost, nil
		},
	})
	if err != nil {
		return FleetBench{}, err
	}
	rs := httptest.NewServer(router)
	defer func() {
		rs.Close()
		router.Close()
		for _, r := range reps {
			r.ts.Close()
		}
	}()

	name := fmt.Sprintf("fleet/replicas=%d", nReplicas)
	if kill {
		name += "/kill=mid-run"
	}

	perClient := fleetTotalRequests / fleetClients
	durs := make([]time.Duration, fleetClients*perClient)
	var (
		sent, deep, degraded, failed atomic.Int64
		killOnce                     sync.Once
		wg                           sync.WaitGroup
	)
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: fleetClients}}
	start := time.Now()
	for c := 0; c < fleetClients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(2000*nReplicas + c)))
			for i := 0; i < perClient; i++ {
				if kill && sent.Add(1) == int64(fleetTotalRequests/2) {
					killOnce.Do(func() {
						reps[nReplicas-1].ts.CloseClientConnections()
						reps[nReplicas-1].ts.Close()
					})
				}
				p := plans[rng.Intn(fleetKeySpace)]
				body, _ := json.Marshal(serve.EstimateRequest{SQL: p.Sig})
				t0 := time.Now()
				resp, err := client.Post(rs.URL+"/estimate", "application/json", bytes.NewReader(body))
				if err != nil {
					failed.Add(1)
					continue
				}
				var er serve.EstimateResponse
				derr := json.NewDecoder(resp.Body).Decode(&er)
				resp.Body.Close()
				durs[c*perClient+i] = time.Since(t0)
				switch {
				case resp.StatusCode != http.StatusOK || derr != nil:
					failed.Add(1)
				case er.Degraded || strings.HasPrefix(er.Source, "fallback"):
					degraded.Add(1)
				default:
					deep.Add(1)
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	total := len(durs)
	var sum time.Duration
	for _, d := range durs {
		sum += d
	}
	pct := func(p float64) float64 {
		idx := int(p * float64(total-1))
		return float64(durs[idx]) / float64(time.Millisecond)
	}
	dead := -1
	if kill {
		dead = nReplicas - 1
	}
	cacheHit, affinity := scrapeAffinity(client, reps, dead)
	return FleetBench{
		Name:            name,
		NsOp:            float64(sum.Nanoseconds()) / float64(total),
		N:               total,
		Replicas:        nReplicas,
		Kill:            map[bool]string{true: "mid-run", false: "none"}[kill],
		QPS:             float64(total) / elapsed.Seconds(),
		P50Ms:           pct(0.50),
		P99Ms:           pct(0.99),
		Availability:    float64(deep.Load()+degraded.Load()) / float64(total),
		DeepFrac:        float64(deep.Load()) / float64(total),
		DegradedFrac:    float64(degraded.Load()) / float64(total),
		Retries:         met.Retries.Value(),
		Failovers:       met.Failovers.Value(),
		Hedges:          met.Hedges.With("fired").Value(),
		CacheHitRate:    cacheHit,
		AffinityHitFrac: affinity,
	}, nil
}
