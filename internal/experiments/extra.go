package experiments

import (
	"io"

	"raal/internal/core"
	"raal/internal/encode"
	"raal/internal/metrics"
	"raal/internal/sparksim"
)

// EncAblationResult compares the paper's word2vec node-semantic embedding
// against the one-hot strawman (Sec. IV-C's motivating argument).
type EncAblationResult struct {
	Word2Vec, OneHot metrics.Result
}

// EncAblation trains RAAL twice on the same records, once per encoding.
func EncAblation(lab *Lab) (*EncAblationResult, error) {
	// Word2vec branch: the lab's default encoder.
	w2vModel, err := lab.RAALModel()
	if err != nil {
		return nil, err
	}
	w2vRes, err := w2vModel.Evaluate(lab.TestSamples)
	if err != nil {
		return nil, err
	}

	// One-hot branch: refit an encoder in one-hot mode over the same
	// plans and re-encode both splits.
	cfg := encode.DefaultConfig()
	cfg.Mode = encode.OneHot
	ohEnc, err := lab.Dataset.FitEncoder(cfg)
	if err != nil {
		return nil, err
	}
	ohTrain := make([]*encode.Sample, len(lab.TrainRecs))
	for i, r := range lab.TrainRecs {
		s := ohEnc.EncodePlan(r.Plan, r.Res)
		s.CostSec = r.CostSec
		ohTrain[i] = s
	}
	ohTest := make([]*encode.Sample, len(lab.TestRecs))
	for i, r := range lab.TestRecs {
		s := ohEnc.EncodePlan(r.Plan, r.Res)
		s.CostSec = r.CostSec
		ohTest[i] = s
	}
	semDim := ohEnc.NodeDim() - ohEnc.MaxNodes() - 2
	mcfg := core.DefaultConfig(semDim, ohEnc.MaxNodes())
	mcfg.Seed = lab.Opt.Seed
	ohModel, _, err := core.Train(ohTrain, core.RAAL(), mcfg, lab.TrainConfig())
	if err != nil {
		return nil, err
	}
	ohRes, err := ohModel.Evaluate(ohTest)
	if err != nil {
		return nil, err
	}
	return &EncAblationResult{Word2Vec: w2vRes, OneHot: ohRes}, nil
}

// Print renders the encoding comparison.
func (r *EncAblationResult) Print(w io.Writer) {
	fprintf(w, "Encoding ablation: word2vec vs one-hot node semantics\n")
	fprintf(w, "%-10s %10s %10s %10s %10s\n", "encoding", "RE", "MSE", "COR", "R2")
	fprintf(w, "%-10s %10.4f %10.4f %10.4f %10.4f\n", "one-hot", r.OneHot.RE, r.OneHot.MSE, r.OneHot.COR, r.OneHot.R2)
	fprintf(w, "%-10s %10.4f %10.4f %10.4f %10.4f\n", "word2vec", r.Word2Vec.RE, r.Word2Vec.MSE, r.Word2Vec.COR, r.Word2Vec.R2)
}

// SimAblationRow is one simulator configuration's memory sensitivity.
type SimAblationRow struct {
	Config   string
	CostAt   map[int]float64 // memory GB → cost of a reference plan
	SpreadPct float64        // (max-min)/min over the sweep
}

// SimAblationResult shows which simulator mechanisms create the paper's
// Sec.-III memory sensitivity: with cache and GC disabled, memory stops
// mattering — and a resource-aware cost model would have nothing to learn.
type SimAblationResult struct {
	Rows []SimAblationRow
}

// SimAblation prices one reference plan across memory sizes under three
// simulator configurations: full, no-cache, and no-cache-no-GC.
func SimAblation(lab *Lab) (*SimAblationResult, error) {
	if len(lab.TestRecs) == 0 {
		return nil, errNoRecords
	}
	// Pick the most expensive test plan as the reference.
	ref := lab.TestRecs[0]
	for _, r := range lab.TestRecs {
		if r.CostSec > ref.CostSec {
			ref = r
		}
	}

	configs := []struct {
		name string
		mod  func(*sparksim.Config)
	}{
		{"full", func(*sparksim.Config) {}},
		{"no-cache", func(c *sparksim.Config) { c.CacheFraction = 0 }},
		{"no-cache-no-gc", func(c *sparksim.Config) { c.CacheFraction = 0; c.GCCoefPerGB = 0; c.BroadcastOverflowPenalty = 1; c.SpillPenalty = 0 }},
	}
	out := &SimAblationResult{}
	for _, cfgSpec := range configs {
		conf := lab.SimConfig()
		conf.NoiseAmplitude = 0
		cfgSpec.mod(&conf)
		sim := sparksim.New(conf)
		row := SimAblationRow{Config: cfgSpec.name, CostAt: map[int]float64{}}
		min, max := 0.0, 0.0
		for mem := 1; mem <= 12; mem += 1 {
			res := sparksim.DefaultResources()
			res.ExecMemMB = float64(mem) * 1024
			c, err := sim.Estimate(ref.Plan, res)
			if err != nil {
				return nil, err
			}
			row.CostAt[mem] = c
			if min == 0 || c < min {
				min = c
			}
			if c > max {
				max = c
			}
		}
		if min > 0 {
			row.SpreadPct = 100 * (max - min) / min
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Print renders cost-vs-memory per simulator configuration.
func (r *SimAblationResult) Print(w io.Writer) {
	fprintf(w, "Simulator ablation: memory sensitivity by mechanism (reference plan)\n")
	fprintf(w, "%-16s", "config")
	for mem := 1; mem <= 12; mem++ {
		fprintf(w, " %7dGB", mem)
	}
	fprintf(w, " %9s\n", "spread")
	for _, row := range r.Rows {
		fprintf(w, "%-16s", row.Config)
		for mem := 1; mem <= 12; mem++ {
			fprintf(w, " %9.2f", row.CostAt[mem])
		}
		fprintf(w, " %8.1f%%\n", row.SpreadPct)
	}
}
