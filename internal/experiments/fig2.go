package experiments

import (
	"fmt"
	"io"

	"raal/internal/cardest"
	"raal/internal/catalog"
	"raal/internal/datagen"
	"raal/internal/engine"
	"raal/internal/logical"
	"raal/internal/physical"
	"raal/internal/sparksim"
	"raal/internal/sql"
)

// Fig2Point is one (query, plan, memory) cost measurement.
type Fig2Point struct {
	Query  string
	PlanID int
	MemGB  float64
	Sec    float64
}

// Fig2Result reproduces Fig. 2: the impact of executor memory on the cost
// of each candidate plan for the paper's four Sec.-III queries.
type Fig2Result struct {
	Queries []string
	Points  []Fig2Point
}

// Fig2Queries returns the paper's four representative queries, with
// literals adapted to the synthetic IMDB's value ranges: (1) single-table,
// (2) two-table SMJ-favoring, (3) two-table BHJ-favoring, (4) three-table.
func Fig2Queries(db *catalog.Database) []string {
	mk, _ := db.Table("movie_keyword")
	kwMax := maxOf(mk.IntCol("keyword_id"))
	mc, _ := db.Table("movie_companies")
	coMax := maxOf(mc.IntCol("company_id"))
	return []string{
		fmt.Sprintf(`SELECT COUNT(*) FROM movie_keyword mk WHERE mk.keyword_id < %d`, kwMax*4/5),
		fmt.Sprintf(`SELECT COUNT(*) FROM title t, movie_companies mc
			WHERE t.id = mc.movie_id AND mc.company_id < %d AND mc.company_type_id > 1`, coMax*9/10),
		`SELECT COUNT(*) FROM title t, movie_info_idx mi_idx
			WHERE t.id = mi_idx.movie_id AND t.kind_id < 7 AND t.production_year > 1961
			AND mi_idx.info_type_id < 101`,
		fmt.Sprintf(`SELECT COUNT(*) FROM title t, movie_companies mc, movie_keyword mk
			WHERE t.id = mc.movie_id AND t.id = mk.movie_id
			AND mc.company_id = %d AND mk.keyword_id < %d`, coMax/100+1, kwMax/3),
	}
}

func maxOf(vals []int64) int64 {
	var m int64
	for _, v := range vals {
		if v > m {
			m = v
		}
	}
	return m
}

// Fig2 evaluates the first three physical plans of each query under
// executor memories of 1–8 GB (2 executors × 2 cores, as in the paper).
func Fig2(scale float64, seed int64) (*Fig2Result, error) {
	db := datagen.IMDB(scale, seed)
	est, err := cardest.New(db, 32, 16)
	if err != nil {
		return nil, err
	}
	planner := physical.NewPlanner(est)
	binder := logical.NewBinder(db)
	eng := engine.New(db)
	sim := sparksim.New(sparksim.DefaultConfig())
	sim.Seed = seed

	out := &Fig2Result{Queries: Fig2Queries(db)}
	for qi, qs := range out.Queries {
		stmt, err := sql.Parse(qs)
		if err != nil {
			return nil, fmt.Errorf("experiments: fig2 query %d: %w", qi+1, err)
		}
		bound, err := binder.Bind(stmt)
		if err != nil {
			return nil, err
		}
		plans, err := planner.Enumerate(bound)
		if err != nil {
			return nil, err
		}
		if len(plans) > 3 {
			plans = plans[:3]
		}
		for _, p := range plans {
			if _, err := eng.Run(p); err != nil {
				return nil, fmt.Errorf("experiments: fig2 query %d: %w", qi+1, err)
			}
		}
		for pi, p := range plans {
			for mem := 1; mem <= 8; mem++ {
				res := sparksim.DefaultResources()
				res.ExecMemMB = float64(mem) * 1024
				sec, err := sim.Estimate(p, res)
				if err != nil {
					return nil, err
				}
				out.Points = append(out.Points, Fig2Point{
					Query: fmt.Sprintf("q%d", qi+1), PlanID: pi + 1, MemGB: float64(mem), Sec: sec,
				})
			}
		}
	}
	return out, nil
}

// OptimalPlanChanges reports, per query, whether the cheapest plan differs
// across memory sizes — the paper's headline Sec.-III observation.
func (r *Fig2Result) OptimalPlanChanges() map[string]bool {
	type key struct {
		q   string
		mem float64
	}
	best := map[key]int{}
	bestCost := map[key]float64{}
	queries := map[string]bool{}
	for _, p := range r.Points {
		k := key{p.Query, p.MemGB}
		if c, ok := bestCost[k]; !ok || p.Sec < c {
			bestCost[k] = p.Sec
			best[k] = p.PlanID
		}
		queries[p.Query] = true
	}
	out := map[string]bool{}
	for q := range queries {
		winners := map[int]bool{}
		for mem := 1; mem <= 8; mem++ {
			if plan, ok := best[key{q, float64(mem)}]; ok {
				winners[plan] = true
			}
		}
		out[q] = len(winners) > 1
	}
	return out
}

// Print renders one series per (query, plan).
func (r *Fig2Result) Print(w io.Writer) {
	fprintf(w, "Fig 2: plan cost (seconds) vs executor memory (GB), 2 executors x 2 cores\n")
	fprintf(w, "%-10s", "series")
	for mem := 1; mem <= 8; mem++ {
		fprintf(w, " %8dGB", mem)
	}
	fprintf(w, "\n")
	series := map[string][]float64{}
	var order []string
	for _, p := range r.Points {
		k := fmt.Sprintf("%s/plan%d", p.Query, p.PlanID)
		if _, ok := series[k]; !ok {
			order = append(order, k)
		}
		series[k] = append(series[k], p.Sec)
	}
	for _, k := range order {
		fprintf(w, "%-10s", k)
		for _, v := range series[k] {
			fprintf(w, " %10.2f", v)
		}
		fprintf(w, "\n")
	}
}
