package experiments

import (
	"runtime"
	"time"
)

// heapWatch samples runtime.MemStats.HeapAlloc on a short ticker and
// tracks the high-water mark above a post-GC baseline. It measures the
// transient footprint of one measured region — exactly what distinguishes
// a streaming executor (live set ≈ a few batches + per-group state) from
// a materialized one (live set ≈ every intermediate relation at once).
type heapWatch struct {
	stop chan struct{}
	done chan struct{}
	base uint64
	peak uint64
}

// watchHeap garbage-collects to establish a clean baseline, then starts
// sampling. Call Stop at the end of the measured region.
func watchHeap() *heapWatch {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	w := &heapWatch{
		stop: make(chan struct{}),
		done: make(chan struct{}),
		base: ms.HeapAlloc,
		peak: ms.HeapAlloc,
	}
	go func() {
		defer close(w.done)
		tick := time.NewTicker(2 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-w.stop:
				return
			case <-tick.C:
				var s runtime.MemStats
				runtime.ReadMemStats(&s)
				if s.HeapAlloc > w.peak {
					w.peak = s.HeapAlloc
				}
			}
		}
	}()
	return w
}

// Stop ends sampling and returns the peak heap growth in bytes above the
// baseline (one final sample catches a spike after the last tick).
func (w *heapWatch) Stop() uint64 {
	close(w.stop)
	<-w.done
	var s runtime.MemStats
	runtime.ReadMemStats(&s)
	if s.HeapAlloc > w.peak {
		w.peak = s.HeapAlloc
	}
	if w.peak <= w.base {
		return 0
	}
	return w.peak - w.base
}
