package experiments

import (
	"errors"
	"fmt"
	"io"
	"sort"
)

var errNoRecords = errors.New("experiments: lab has no records")

// Report is anything an experiment can print.
type Report interface {
	Print(w io.Writer)
}

// Runner executes one named experiment.
type Runner struct {
	Name        string
	Description string
	// NeedsLab is true when the experiment consumes a prepared Lab.
	NeedsLab bool
	RunLab   func(lab *Lab) (Report, error)
	Run      func(opt Options) (Report, error)
}

// Registry lists every reproducible table and figure.
func Registry() []Runner {
	return []Runner{
		{Name: "fig1", Description: "default vs RAAL-tuned plan choice on 20 queries", NeedsLab: true,
			RunLab: func(l *Lab) (Report, error) { return Fig1(l) }},
		{Name: "fig2", Description: "plan cost vs executor memory (4 Sec-III queries)",
			Run: func(o Options) (Report, error) { return Fig2(o.Scale, o.Seed) }},
		{Name: "table4", Description: "module ablation: RAAL vs NE-LSTM vs NA-LSTM vs RAAC", NeedsLab: true,
			RunLab: func(l *Lab) (Report, error) { return Ablation(l) }},
		{Name: "fig6", Description: "training loss curves (same run as table4)", NeedsLab: true,
			RunLab: func(l *Lab) (Report, error) { return Ablation(l) }},
		{Name: "table5", Description: "RAAL vs TLSTM under fixed resources",
			Run: func(o Options) (Report, error) { return Table5(o) }},
		{Name: "table6", Description: "RAAL vs GPSJ analytical model", NeedsLab: true,
			RunLab: func(l *Lab) (Report, error) { return Table6(l) }},
		{Name: "table7", Description: "resource-aware attention on/off, all architectures", NeedsLab: true,
			RunLab: func(l *Lab) (Report, error) { return Table7(l) }},
		{Name: "fig7", Description: "actual vs estimated scatter, with/without resources", NeedsLab: true,
			RunLab: func(l *Lab) (Report, error) { return Fig7(l) }},
		{Name: "fig8", Description: "adaptability across executor memory sizes", NeedsLab: true,
			RunLab: func(l *Lab) (Report, error) { return Fig8(l) }},
		{Name: "table8", Description: "training time and error vs training-set size", NeedsLab: true,
			RunLab: func(l *Lab) (Report, error) { return Table8(l) }},
		{Name: "table9", Description: "online estimation latency per 100 queries", NeedsLab: true,
			RunLab: func(l *Lab) (Report, error) { return Table9(l) }},
		{Name: "enc", Description: "extra: word2vec vs one-hot node encoding", NeedsLab: true,
			RunLab: func(l *Lab) (Report, error) { return EncAblation(l) }},
		{Name: "sim", Description: "extra: simulator mechanism ablation (memory sensitivity)", NeedsLab: true,
			RunLab: func(l *Lab) (Report, error) { return SimAblation(l) }},
		{Name: "transfer", Description: "extra: cold-start transfer IMDB→TPC-H (paper future work)",
			Run: func(o Options) (Report, error) { return Transfer(o) }},
		{Name: "aqe", Description: "extra: static default vs adaptive execution vs RAAL choice", NeedsLab: true,
			RunLab: func(l *Lab) (Report, error) { return AQE(l) }},
		{Name: "drift", Description: "extra: cluster migration + incremental retraining",
			Run: func(o Options) (Report, error) { return Drift(o) }},
		{Name: "qerror", Description: "extra: cardinality q-error by join depth", NeedsLab: true,
			RunLab: func(l *Lab) (Report, error) { return QError(l) }},
		{Name: "micro", Description: "extra: hot-path microbenchmarks (predict/fit ns/op and allocs/op)",
			Run: func(o Options) (Report, error) { return Micro(o) }},
		{Name: "serve", Description: "extra: serving throughput, micro-batching on vs off per client count",
			Run: func(o Options) (Report, error) { return Serve(o) }},
		{Name: "fleet", Description: "extra: fleet router scaling 1→N replicas + kill-mid-run availability",
			Run: func(o Options) (Report, error) { return Fleet(o) }},
		{Name: "online", Description: "extra: seeded drift drill — workload shift, retrain, shadow-score, promote",
			Run: func(o Options) (Report, error) { return Online(o) }},
		{Name: "quant", Description: "extra: quantized inference — f64 vs f32 vs int8 latency and q-error delta",
			Run: func(o Options) (Report, error) { return Quant(o) }},
		{Name: "engine", Description: "extra: streaming vs materialized execution — throughput, peak heap, allocs/row on a 10^6-row join",
			Run: func(o Options) (Report, error) { return EngineBench(o) }},
	}
}

// Names returns the sorted experiment names.
func Names() []string {
	rs := Registry()
	names := make([]string, len(rs))
	for i, r := range rs {
		names[i] = r.Name
	}
	sort.Strings(names)
	return names
}

// Lookup finds a runner by name.
func Lookup(name string) (Runner, error) {
	for _, r := range Registry() {
		if r.Name == name {
			return r, nil
		}
	}
	return Runner{}, fmt.Errorf("experiments: unknown experiment %q (have %v)", name, Names())
}
