package experiments

import (
	"io"
	"time"

	"raal/internal/core"
	"raal/internal/encode"
	"raal/internal/metrics"
	"raal/internal/sparksim"
)

// Fig8Row is the metrics of the trained model evaluated in one memory
// environment.
type Fig8Row struct {
	MemGB   float64
	Metrics metrics.Result
}

// Fig8Result reproduces Fig. 8: RAAL's adaptability across executor
// memory sizes — metrics should stay flat as the environment changes.
type Fig8Result struct {
	Rows []Fig8Row
}

// Fig8 trains RAAL on the mixed-resource corpus, then re-prices the test
// plans in clusters of each memory size and evaluates prediction quality
// per environment.
func Fig8(lab *Lab) (*Fig8Result, error) {
	model, err := lab.RAALModel()
	if err != nil {
		return nil, err
	}
	return Fig8WithModel(lab, model)
}

// Fig8WithModel runs the adaptability sweep with a trained model.
func Fig8WithModel(lab *Lab, model *core.Model) (*Fig8Result, error) {
	sim := sparksim.New(lab.SimConfig())
	sim.Seed = lab.Opt.Seed

	out := &Fig8Result{}
	for mem := 2; mem <= 12; mem += 2 {
		res := sparksim.DefaultResources()
		res.ExecMemMB = float64(mem) * 1024

		// Deduplicate plans: test records may share plans across
		// resource states; one evaluation per plan per environment.
		seen := map[any]bool{}
		var samples []*encode.Sample
		for _, rec := range lab.TestRecs {
			if seen[rec.Plan] {
				continue
			}
			seen[rec.Plan] = true
			actual, err := sim.Estimate(rec.Plan, res)
			if err != nil {
				return nil, err
			}
			s := lab.Enc.EncodePlan(rec.Plan, res)
			s.CostSec = actual
			samples = append(samples, s)
		}
		m, err := model.Evaluate(samples)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, Fig8Row{MemGB: float64(mem), Metrics: m})
	}
	return out, nil
}

// Print renders the per-environment metrics.
func (r *Fig8Result) Print(w io.Writer) {
	fprintf(w, "Fig 8: RAAL adaptability across executor memory sizes\n")
	fprintf(w, "%-8s %10s %10s %10s %10s\n", "memory", "RE", "MSE", "COR", "R2")
	for _, row := range r.Rows {
		m := row.Metrics
		fprintf(w, "%6.0fGB %10.4f %10.4f %10.4f %10.4f\n", row.MemGB, m.RE, m.MSE, m.COR, m.R2)
	}
}

// Table8Row is one training-set size level.
type Table8Row struct {
	TrainSize int
	TrainSec  float64
	TestRE    float64
	TestMSE   float64
}

// Table8Result reproduces Table VIII: training time and test error as a
// function of training-set size.
type Table8Result struct {
	Rows []Table8Row
}

// Table8 trains RAAL on growing prefixes of the training split.
func Table8(lab *Lab) (*Table8Result, error) {
	out := &Table8Result{}
	fracs := []float64{0.2, 0.4, 0.6, 0.8, 1.0}
	for _, f := range fracs {
		n := int(float64(len(lab.TrainSamples)) * f)
		if n < 10 {
			continue
		}
		subset := lab.TrainSamples[:n]
		start := time.Now()
		model, _, err := core.Train(subset, core.RAAL(), lab.ModelConfig(), lab.TrainConfig())
		if err != nil {
			return nil, err
		}
		dur := time.Since(start)
		m, err := model.Evaluate(lab.TestSamples)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, Table8Row{
			TrainSize: n, TrainSec: dur.Seconds(), TestRE: m.RE, TestMSE: m.MSE,
		})
	}
	return out, nil
}

// Print renders the scaling table.
func (r *Table8Result) Print(w io.Writer) {
	fprintf(w, "Table VIII: training time and test error vs training-set size\n")
	fprintf(w, "%-10s %12s %10s %10s\n", "samples", "train(s)", "RE", "MSE")
	for _, row := range r.Rows {
		fprintf(w, "%-10d %12.1f %10.4f %10.4f\n", row.TrainSize, row.TrainSec, row.TestRE, row.TestMSE)
	}
}
