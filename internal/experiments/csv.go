package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// CSVer is implemented by results whose figure data can be exported for
// plotting.
type CSVer interface {
	CSV(w io.Writer) error
}

// CSV writes Fig. 1 as query,default_sec,tuned_sec rows.
func (r *Fig1Result) CSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"query", "default_sec", "tuned_sec"}); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if err := cw.Write([]string{
			strconv.Itoa(row.Query), ftoa(row.DefaultSec), ftoa(row.TunedSec),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// CSV writes Fig. 2 as query,plan,mem_gb,cost_sec rows.
func (r *Fig2Result) CSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"query", "plan", "mem_gb", "cost_sec"}); err != nil {
		return err
	}
	for _, p := range r.Points {
		if err := cw.Write([]string{
			p.Query, strconv.Itoa(p.PlanID), ftoa(p.MemGB), ftoa(p.Sec),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// CSV writes the Fig. 6 loss curves as model,epoch,loss rows.
func (r *AblationResult) CSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"model", "epoch", "loss"}); err != nil {
		return err
	}
	names := make([]string, 0, len(r.Curves))
	for n := range r.Curves {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		for epoch, loss := range r.Curves[name] {
			if err := cw.Write([]string{name, strconv.Itoa(epoch + 1), ftoa(loss)}); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// CSV writes Fig. 7 as actual,est_with_res,est_without_res rows.
func (r *Fig7Result) CSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"actual_sec", "est_with_res", "est_without_res"}); err != nil {
		return err
	}
	for i := range r.WithRes {
		if err := cw.Write([]string{
			ftoa(r.WithRes[i].Actual), ftoa(r.WithRes[i].Estimated), ftoa(r.WithoutRes[i].Estimated),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// CSV writes Fig. 8 as mem_gb,re,mse,cor,r2 rows.
func (r *Fig8Result) CSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"mem_gb", "re", "mse", "cor", "r2"}); err != nil {
		return err
	}
	for _, row := range r.Rows {
		m := row.Metrics
		if err := cw.Write([]string{
			ftoa(row.MemGB), ftoa(m.RE), ftoa(m.MSE), ftoa(m.COR), ftoa(m.R2),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// CSV writes Table VIII as train_size,train_sec,re,mse rows.
func (r *Table8Result) CSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"train_size", "train_sec", "re", "mse"}); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if err := cw.Write([]string{
			strconv.Itoa(row.TrainSize), ftoa(row.TrainSec), ftoa(row.TestRE), ftoa(row.TestMSE),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// CSV writes the simulator ablation as config,mem_gb,cost_sec rows.
func (r *SimAblationResult) CSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"config", "mem_gb", "cost_sec"}); err != nil {
		return err
	}
	for _, row := range r.Rows {
		for mem := 1; mem <= 12; mem++ {
			if err := cw.Write([]string{row.Config, strconv.Itoa(mem), ftoa(row.CostAt[mem])}); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

func ftoa(v float64) string { return fmt.Sprintf("%.4f", v) }
