package experiments

import (
	"bytes"
	"testing"
)

func TestQErrorByJoinDepth(t *testing.T) {
	lab := quickLab(t)
	r, err := QError(lab)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) == 0 {
		t.Fatal("no join depths analyzed")
	}
	for _, row := range r.Rows {
		if row.Median < 1 || row.P90 < row.Median || row.Max < row.P90 {
			t.Fatalf("quantiles inconsistent: %+v", row)
		}
		if row.Plans == 0 {
			t.Fatalf("depth %d has no plans", row.Joins)
		}
	}
	var buf bytes.Buffer
	r.Print(&buf)
	if buf.Len() == 0 {
		t.Fatal("empty report")
	}
}
