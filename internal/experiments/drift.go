package experiments

import (
	"io"

	"raal/internal/encode"
	"raal/internal/metrics"
	"raal/internal/sparksim"
	"raal/internal/workload"
)

// DriftResult demonstrates the paper's maintainability claim ("learnable
// cost models can easily be updated regularly and adapted to different
// clusters"): after a cluster migration — different CPU generation, GC
// behavior, and cache efficiency — a stale model's error jumps, and a
// short incremental fit on records from the new cluster recovers it.
//
// Note that *data growth* alone barely hurts the model: node features and
// labels are both log-scaled, so volume changes move them coherently. A
// hardware change breaks the learned mapping itself, which is the
// interesting drift.
type DriftResult struct {
	Before    metrics.Result // on the original cluster
	Drifted   metrics.Result // stale model on the migrated cluster
	Retrained metrics.Result // after incremental fitting on fresh records
	FreshN    int            // records used for the incremental fit
}

// migratedCluster returns the simulator calibration of the "new" cluster:
// slower per-row CPU (older boxes), heavier GC, and a less effective
// cache tier.
func migratedCluster() sparksim.Config {
	c := sparksim.DefaultConfig()
	c.ScanNsPerRow *= 3
	c.AggNsPerRow *= 3
	c.HashProbeNsPerRow *= 3
	c.MergeNsPerRow *= 3
	c.SortNsPerRow *= 3
	c.GCCoefPerGB *= 3
	c.CacheFraction *= 0.4
	return c
}

// Drift trains on the lab's benchmark, migrates the cluster, and measures
// the stale model before and after incremental retraining. The migrated
// evaluation re-prices exactly the lab's test records on the new cluster,
// so before/after differ only in the cost function — a clean comparison.
func Drift(opt Options) (*DriftResult, error) {
	opt = opt.withDefaults()
	lab, err := NewLab(opt)
	if err != nil {
		return nil, err
	}
	model, err := lab.RAALModel()
	if err != nil {
		return nil, err
	}
	out := &DriftResult{}
	if out.Before, err = model.Evaluate(lab.TestSamples); err != nil {
		return nil, err
	}

	// Re-price the same records on the migrated cluster.
	sim := sparksim.New(migratedCluster())
	sim.Seed = opt.Seed
	reprice := func(recs []workload.Record) ([]*encode.Sample, error) {
		samples := make([]*encode.Sample, len(recs))
		for i, r := range recs {
			cost, err := sim.Estimate(r.Plan, r.Res)
			if err != nil {
				return nil, err
			}
			s := lab.Enc.EncodePlan(r.Plan, r.Res)
			s.CostSec = cost
			samples[i] = s
		}
		return samples, nil
	}
	testSamples, err := reprice(lab.TestRecs)
	if err != nil {
		return nil, err
	}
	if out.Drifted, err = model.Evaluate(testSamples); err != nil {
		return nil, err
	}

	// Incremental update: continue training the same weights on a 20%
	// slice of fresh records for a fraction of the original epochs.
	n := len(lab.TrainRecs) / 5
	if n < 10 {
		n = len(lab.TrainRecs)
	}
	trainSamples, err := reprice(lab.TrainRecs[:n])
	if err != nil {
		return nil, err
	}
	tc := lab.TrainConfig()
	tc.Epochs = maxInt(3, tc.Epochs/3)
	out.FreshN = len(trainSamples)
	if _, err := model.Fit(trainSamples, tc); err != nil {
		return nil, err
	}
	if out.Retrained, err = model.Evaluate(testSamples); err != nil {
		return nil, err
	}
	// The cached model has been mutated by the incremental fit; drop it
	// so later experiments on this lab retrain from scratch.
	lab.raalModel = nil
	return out, nil
}

// Print renders the drift study.
func (r *DriftResult) Print(w io.Writer) {
	fprintf(w, "Cluster drift: hardware migration, then incremental retraining\n")
	fprintf(w, "%-28s %10s %10s %10s %10s\n", "phase", "RE", "MSE", "COR", "R2")
	row := func(name string, m metrics.Result) {
		fprintf(w, "%-28s %10.4f %10.4f %10.4f %10.4f\n", name, m.RE, m.MSE, m.COR, m.R2)
	}
	row("original cluster", r.Before)
	row("migrated cluster (stale)", r.Drifted)
	row("after incremental fit", r.Retrained)
	fprintf(w, "(incremental fit on %d fresh records)\n", r.FreshN)
}
