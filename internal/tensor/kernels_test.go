package tensor

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

// naiveMatMul is the textbook triple loop: the reference the blocked
// kernels must match bit for bit (they reorder no per-element additions,
// so equality is exact, not approximate).
func naiveMatMul(a, b *Matrix) *Matrix {
	out := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			var s float64
			for k := 0; k < a.Cols; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			out.Set(i, j, s)
		}
	}
	return out
}

func randMat(rng *rand.Rand, r, c int) *Matrix {
	m := New(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
		if rng.Intn(8) == 0 {
			m.Data[i] = 0 // exercise the zero-skip fast path
		}
	}
	return m
}

func mustEqual(t *testing.T, got, want *Matrix, what string) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("%s: shape (%d,%d) want (%d,%d)", what, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i := range want.Data {
		if got.Data[i] != want.Data[i] && !(math.IsNaN(got.Data[i]) && math.IsNaN(want.Data[i])) {
			t.Fatalf("%s: element %d = %v, want %v (bit-exact)", what, i, got.Data[i], want.Data[i])
		}
	}
}

// TestBlockedMatMulMatchesNaive pins the register-blocked kernels to the
// reference on shapes that hit every unroll remainder (cols ≡ 0..3 mod 4).
func TestBlockedMatMulMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		m := 1 + rng.Intn(9)
		k := 1 + rng.Intn(9)
		n := 1 + rng.Intn(13) // 1..13 covers all j-unroll tails
		a := randMat(rng, m, k)
		b := randMat(rng, k, n)
		want := naiveMatMul(a, b)

		mustEqual(t, MatMul(a, b), want, "MatMul")

		out := randMat(rng, m, n) // dirty output: Into must overwrite fully
		MatMulInto(out, a, b)
		mustEqual(t, out, want, "MatMulInto")

		// a·b = (aᵀ)ᵀ·b and a·b = a·(bᵀ)ᵀ exercise the transposed kernels.
		at := a.Transpose()
		outA := randMat(rng, m, n)
		MatMulTransAInto(outA, at, b)
		mustEqual(t, outA, want, "MatMulTransAInto")
		mustEqual(t, MatMulTransA(at, b), want, "MatMulTransA")

		bt := b.Transpose()
		wantTB := MatMulTransB(a, bt)
		mustEqual(t, wantTB, want, "MatMulTransB") // dot-product form, same order ⇒ exact
		outB := randMat(rng, m, n)
		MatMulTransBInto(outB, a, bt)
		mustEqual(t, outB, wantTB, "MatMulTransBInto")
	}
}

// TestIntoKernelsMatchAllocating cross-checks every element-wise Into
// kernel against its allocating counterpart on random shapes, both into a
// fresh output and aliased onto an input (element-wise kernels permit
// aliasing).
func TestIntoKernelsMatchAllocating(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	relu := func(x float64) float64 { return math.Max(0, x) }
	for trial := 0; trial < 50; trial++ {
		r := 1 + rng.Intn(7)
		c := 1 + rng.Intn(9)
		a := randMat(rng, r, c)
		b := randMat(rng, r, c)
		row := randMat(rng, 1, c)

		cases := []struct {
			name string
			want *Matrix
			into func(out *Matrix)
		}{
			{"AddInto", Add(a, b), func(out *Matrix) { AddInto(out, a, b) }},
			{"SubInto", Sub(a, b), func(out *Matrix) { SubInto(out, a, b) }},
			{"MulInto", Mul(a, b), func(out *Matrix) { MulInto(out, a, b) }},
			{"ScaleInto", Scale(a, 1.7), func(out *Matrix) { ScaleInto(out, a, 1.7) }},
			{"ApplyInto", Apply(a, relu), func(out *Matrix) { ApplyInto(out, a, relu) }},
			{"AddRowInto", AddRow(a, row), func(out *Matrix) { AddRowInto(out, a, row) }},
			{"AddRowApplyInto", Apply(AddRow(a, row), relu), func(out *Matrix) { AddRowApplyInto(out, a, row, relu) }},
			{"AddRowApplyInto/nil-f", AddRow(a, row), func(out *Matrix) { AddRowApplyInto(out, a, row, nil) }},
		}
		for _, tc := range cases {
			out := randMat(rng, r, c)
			tc.into(out)
			mustEqual(t, out, tc.want, tc.name)
		}

		// Aliased element-wise writes are explicitly supported.
		ac := a.Clone()
		AddInto(ac, ac, b)
		mustEqual(t, ac, Add(a, b), "AddInto aliased out==a")
		mc := a.Clone()
		MulInto(mc, mc, b)
		mustEqual(t, mc, Mul(a, b), "MulInto aliased out==a")
		rc := a.Clone()
		AddRowApplyInto(rc, rc, row, relu)
		mustEqual(t, rc, Apply(AddRow(a, row), relu), "AddRowApplyInto aliased out==m")
	}
}

func TestTransposeInto(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := randMat(rng, 3, 5)
	out := randMat(rng, 5, 3)
	TransposeInto(out, a)
	mustEqual(t, out, a.Transpose(), "TransposeInto")
}

// TestIntoKernelsPanicOnAliasing pins the contract that reduction-style
// kernels (matmuls, transpose) refuse in-place operation: aliasing their
// output onto an input would read half-written values.
func TestIntoKernelsPanicOnAliasing(t *testing.T) {
	sq := New(4, 4)
	cases := []struct {
		name string
		call func()
	}{
		{"MatMulInto out==a", func() { MatMulInto(sq, sq, New(4, 4)) }},
		{"MatMulInto out==b", func() { MatMulInto(sq, New(4, 4), sq) }},
		{"MatMulTransAInto out==a", func() { MatMulTransAInto(sq, sq, New(4, 4)) }},
		{"MatMulTransBInto out==b", func() { MatMulTransBInto(sq, New(4, 4), sq) }},
		{"TransposeInto out==m", func() { TransposeInto(sq, sq) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s should panic", tc.name)
				}
			}()
			tc.call()
		})
	}
}

func TestIntoKernelsPanicOnShapeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("wrong-shaped output should panic")
		}
	}()
	MatMulInto(New(2, 2), New(2, 3), New(3, 4))
}

// TestStringPreviewTruncates pins the corner-preview String format: large
// matrices must render a bounded preview, not megabytes of digits.
func TestStringPreviewTruncates(t *testing.T) {
	big := New(100, 100)
	for i := range big.Data {
		big.Data[i] = float64(i)
	}
	s := big.String()
	if len(s) > 200 {
		t.Fatalf("String() of a 100x100 matrix is %d bytes; want a bounded preview: %q", len(s), s)
	}
	if !strings.Contains(s, "100x100") {
		t.Fatalf("preview should include the shape, got %q", s)
	}
	if !strings.Contains(s, "...") {
		t.Fatalf("truncated preview should carry an ellipsis, got %q", s)
	}

	small := FromSlice(1, 3, []float64{1, 2, 3})
	ss := small.String()
	if strings.Contains(ss, "...") {
		t.Fatalf("small matrices should print in full, got %q", ss)
	}
	for _, want := range []string{"1", "2", "3"} {
		if !strings.Contains(ss, want) {
			t.Fatalf("small preview missing %s: %q", want, ss)
		}
	}
}
