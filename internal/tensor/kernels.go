package tensor

import "fmt"

// This file holds the Into variants of the allocating element-wise and
// structural operations: each writes its result into caller-provided
// storage so hot paths (the autodiff arena, model serving) can recycle
// matrices instead of allocating per op.
//
// Aliasing rules: the element-wise kernels (AddInto, SubInto, MulInto,
// ScaleInto, ApplyInto, AddRowInto, AddRowApplyInto) read each input
// element exactly once before writing the corresponding output element, so
// out may alias an input of the same shape (in-place update). The matmul
// and transpose kernels read inputs after writing outputs and therefore
// panic when out shares storage with an input.

// sameData reports whether two matrices share backing storage. The arena
// hands out whole allocations, so a full-overlap check is sufficient —
// partially overlapping views do not occur in this codebase.
func sameData(a, b *Matrix) bool {
	return len(a.Data) > 0 && len(b.Data) > 0 && &a.Data[0] == &b.Data[0]
}

func mustNotAlias(op string, out, a, b *Matrix) {
	if sameData(out, a) || sameData(out, b) {
		panic(fmt.Sprintf("tensor: %s out must not alias an input", op))
	}
}

func mustOutShape(op string, out, want *Matrix) {
	if !out.SameShape(want) {
		panic(fmt.Sprintf("tensor: %s out shape %dx%d, want %dx%d", op, out.Rows, out.Cols, want.Rows, want.Cols))
	}
}

// AddInto computes out = a+b elementwise. out may alias a or b.
func AddInto(out, a, b *Matrix) {
	mustSameShape("add", a, b)
	mustOutShape("add", out, a)
	for i, v := range a.Data {
		out.Data[i] = v + b.Data[i]
	}
}

// SubInto computes out = a−b elementwise. out may alias a or b.
func SubInto(out, a, b *Matrix) {
	mustSameShape("sub", a, b)
	mustOutShape("sub", out, a)
	for i, v := range a.Data {
		out.Data[i] = v - b.Data[i]
	}
}

// MulInto computes the Hadamard product out = a∘b. out may alias a or b.
func MulInto(out, a, b *Matrix) {
	mustSameShape("mul", a, b)
	mustOutShape("mul", out, a)
	for i, v := range a.Data {
		out.Data[i] = v * b.Data[i]
	}
}

// ScaleInto computes out = s·m. out may alias m.
func ScaleInto(out, m *Matrix, s float64) {
	mustOutShape("scale", out, m)
	for i, v := range m.Data {
		out.Data[i] = v * s
	}
}

// ApplyInto computes out = f(m) elementwise. out may alias m.
func ApplyInto(out, m *Matrix, f func(float64) float64) {
	mustOutShape("apply", out, m)
	for i, v := range m.Data {
		out.Data[i] = f(v)
	}
}

// AddRowInto computes out = m with the 1×cols row vector r added to every
// row. out may alias m.
func AddRowInto(out, m, r *Matrix) {
	if r.Rows != 1 || r.Cols != m.Cols {
		panic(fmt.Sprintf("tensor: addRow wants 1x%d, got %dx%d", m.Cols, r.Rows, r.Cols))
	}
	mustOutShape("addRow", out, m)
	for i := 0; i < m.Rows; i++ {
		src := m.Row(i)
		dst := out.Row(i)
		for j, v := range r.Data {
			dst[j] = src[j] + v
		}
	}
}

// AddRowApplyInto fuses bias addition and activation into one pass:
// out[i][j] = f(m[i][j] + r[j]). A nil f is the identity, making the call
// equivalent to AddRowInto. out may alias m. This is the kernel behind
// every dense layer and LSTM gate, where it saves one full matrix write
// and read between the broadcast add and the non-linearity.
func AddRowApplyInto(out, m, r *Matrix, f func(float64) float64) {
	if f == nil {
		AddRowInto(out, m, r)
		return
	}
	if r.Rows != 1 || r.Cols != m.Cols {
		panic(fmt.Sprintf("tensor: addRowApply wants 1x%d, got %dx%d", m.Cols, r.Rows, r.Cols))
	}
	mustOutShape("addRowApply", out, m)
	for i := 0; i < m.Rows; i++ {
		src := m.Row(i)
		dst := out.Row(i)
		for j, v := range r.Data {
			dst[j] = f(src[j] + v)
		}
	}
}

// TransposeInto computes out = mᵀ. out must not alias m.
func TransposeInto(out, m *Matrix) {
	if out.Rows != m.Cols || out.Cols != m.Rows {
		panic(fmt.Sprintf("tensor: transpose out shape %dx%d, want %dx%d", out.Rows, out.Cols, m.Cols, m.Rows))
	}
	if sameData(out, m) {
		panic("tensor: transpose out must not alias an input")
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			out.Data[j*m.Rows+i] = v
		}
	}
}
