// Package tensor provides dense float64 matrices and the linear-algebra
// primitives used by the autodiff engine and the neural-network layers.
//
// The package is deliberately 2-D: every value flowing through the deep
// cost model is a matrix (a vector is a 1×n or n×1 matrix). Data is stored
// row-major in a single contiguous slice, which keeps the hot matmul loops
// cache friendly.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"sync/atomic"
)

// Matrix is a dense, row-major float64 matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// allocCount counts every matrix allocated through New. The autodiff arena
// recycles matrices instead of re-allocating them, and the allocation-
// regression tests pin the warm inference path to a zero delta of this
// counter — an exact measure that, unlike testing.AllocsPerRun, cannot be
// perturbed by unrelated runtime allocations.
var allocCount atomic.Uint64

// Allocs returns the number of matrices allocated by New since process
// start. The counter only ever increases; callers compare deltas.
func Allocs() uint64 { return allocCount.Load() }

// New returns a zero-initialized rows×cols matrix.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative dimension %dx%d", rows, cols))
	}
	allocCount.Add(1)
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromSlice wraps data (row-major, length rows*cols) in a Matrix. The slice
// is used directly, not copied.
func FromSlice(rows, cols int, data []float64) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: data length %d != %d*%d", len(data), rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// FromRows builds a matrix from row slices, which must all have equal length.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return New(0, 0)
	}
	cols := len(rows[0])
	m := New(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			panic(fmt.Sprintf("tensor: ragged row %d: %d != %d", i, len(r), cols))
		}
		copy(m.Data[i*cols:(i+1)*cols], r)
	}
	return m
}

// RowVector returns a 1×n matrix holding a copy of v.
func RowVector(v []float64) *Matrix {
	m := New(1, len(v))
	copy(m.Data, v)
	return m
}

// Randn returns a rows×cols matrix with entries drawn from N(0, std²).
func Randn(rows, cols int, std float64, rng *rand.Rand) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64() * std
	}
	return m
}

// Uniform returns a rows×cols matrix with entries drawn from U(lo, hi).
func Uniform(rows, cols int, lo, hi float64, rng *rand.Rand) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = lo + rng.Float64()*(hi-lo)
	}
	return m
}

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a slice sharing the matrix's backing array.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := New(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Zero sets every element of m to zero.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Fill sets every element of m to v.
func (m *Matrix) Fill(v float64) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// SameShape reports whether m and o have identical dimensions.
func (m *Matrix) SameShape(o *Matrix) bool { return m.Rows == o.Rows && m.Cols == o.Cols }

// stringPreview caps how many elements String renders: a panic message or
// debug log mentioning a 512×512 matrix should be one line, not megabytes.
const stringPreview = 8

func (m *Matrix) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Matrix(%dx%d)[", m.Rows, m.Cols)
	show := len(m.Data)
	if show > stringPreview {
		show = stringPreview
	}
	for i := 0; i < show; i++ {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%g", m.Data[i])
	}
	if len(m.Data) > show {
		b.WriteString(" ...")
	}
	b.WriteByte(']')
	return b.String()
}

// MatMul returns a×b. Panics if the inner dimensions disagree.
func MatMul(a, b *Matrix) *Matrix {
	out := New(a.Rows, b.Cols)
	MatMulInto(out, a, b)
	return out
}

// MatMulInto computes out = a×b, reusing out's storage. out must be
// a.Rows×b.Cols and must not alias a or b.
//
// Every output element is a dot product accumulated in ascending k with
// zero operands of a skipped, regardless of which internal kernel or how
// many goroutines compute it — so results are bit-identical across the
// register/streaming paths and across every SetMatMulWorkers setting.
func MatMulInto(out, a, b *Matrix) {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: matmul shape mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if out.Rows != a.Rows || out.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: matmul out shape %dx%d, want %dx%d", out.Rows, out.Cols, a.Rows, b.Cols))
	}
	mustNotAlias("matmul", out, a, b)
	flops := int64(a.Rows) * int64(a.Cols) * int64(b.Cols)
	if w := spanWorkers(a.Rows, flops); w > 1 {
		parallelRanges(a.Rows, w, func(lo, hi int) {
			matMulRows(rowView(out, lo, hi), rowView(a, lo, hi), b)
		})
		return
	}
	matMulRows(out, a, b)
}

// regPathMaxBFloats bounds len(b.Data) for the register-accumulator
// matmul path, which re-reads all of b once per output row: past roughly
// L2 size the re-reads stall and the streaming ikj kernel wins.
const regPathMaxBFloats = 1 << 15

// matMulRows is the serial out = a×b kernel over a contiguous row range
// (the views built by MatMulInto). It picks between two loop orders that
// produce bit-identical results (per element: ascending-k accumulation,
// a-zeros skipped):
//
//   - register path (jik): four output columns accumulate in registers
//     while a's row streams once; out is written exactly once, never
//     re-read. Wins while b stays cache-resident, which covers every
//     weight matrix in the cost model.
//   - streaming path (ikj): the inner loop streams contiguous rows of b
//     and out, trading out re-reads for sequential access to a large b.
func matMulRows(out, a, b *Matrix) {
	n := b.Cols
	if len(b.Data) <= regPathMaxBFloats {
		for i := 0; i < a.Rows; i++ {
			arow := a.Data[i*a.Cols : (i+1)*a.Cols]
			orow := out.Data[i*n : (i+1)*n]
			j := 0
			for ; j+4 <= n; j += 4 {
				var s0, s1, s2, s3 float64
				idx := j
				for _, av := range arow {
					if av != 0 {
						b4 := b.Data[idx : idx+4 : idx+4]
						s0 += av * b4[0]
						s1 += av * b4[1]
						s2 += av * b4[2]
						s3 += av * b4[3]
					}
					idx += n
				}
				orow[j], orow[j+1], orow[j+2], orow[j+3] = s0, s1, s2, s3
			}
			for ; j < n; j++ {
				var s float64
				idx := j
				for _, av := range arow {
					if av != 0 {
						s += av * b.Data[idx]
					}
					idx += n
				}
				orow[j] = s
			}
		}
		return
	}
	out.Zero()
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		orow := out.Data[i*n : (i+1)*n]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[k*n : (k+1)*n]
			j := 0
			for ; j+4 <= n; j += 4 {
				b4 := brow[j : j+4 : j+4]
				o4 := orow[j : j+4 : j+4]
				o4[0] += av * b4[0]
				o4[1] += av * b4[1]
				o4[2] += av * b4[2]
				o4[3] += av * b4[3]
			}
			for ; j < n; j++ {
				orow[j] += av * brow[j]
			}
		}
	}
}

// MatMulTransB returns a×bᵀ without materializing bᵀ.
func MatMulTransB(a, b *Matrix) *Matrix {
	out := New(a.Rows, b.Rows)
	MatMulTransBInto(out, a, b)
	return out
}

// MatMulTransBInto computes out = a×bᵀ, reusing out's storage. out must be
// a.Rows×b.Rows and must not alias a or b.
func MatMulTransBInto(out, a, b *Matrix) {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: matmulTransB shape mismatch %dx%d · (%dx%d)ᵀ", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if out.Rows != a.Rows || out.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: matmulTransB out shape %dx%d, want %dx%d", out.Rows, out.Cols, a.Rows, b.Rows))
	}
	mustNotAlias("matmulTransB", out, a, b)
	flops := int64(a.Rows) * int64(a.Cols) * int64(b.Rows)
	if w := spanWorkers(a.Rows, flops); w > 1 {
		parallelRanges(a.Rows, w, func(lo, hi int) {
			matMulTransBRows(rowView(out, lo, hi), rowView(a, lo, hi), b)
		})
		return
	}
	matMulTransBRows(out, a, b)
}

// matMulTransBRows is the serial out = a×bᵀ kernel over a contiguous row
// range. Each output row is a set of dot products against rows of b;
// running four of them at once keeps four accumulators in registers while
// a's row streams through cache once per block. Every accumulator still
// sums in ascending k, so results are bit-identical to the scalar loop.
func matMulTransBRows(out, a, b *Matrix) {
	bc := b.Cols
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		orow := out.Data[i*b.Rows : (i+1)*b.Rows]
		j := 0
		for ; j+4 <= b.Rows; j += 4 {
			b0 := b.Data[j*bc : (j+1)*bc]
			b1 := b.Data[(j+1)*bc : (j+2)*bc]
			b2 := b.Data[(j+2)*bc : (j+3)*bc]
			b3 := b.Data[(j+3)*bc : (j+4)*bc]
			var s0, s1, s2, s3 float64
			for k, av := range arow {
				s0 += av * b0[k]
				s1 += av * b1[k]
				s2 += av * b2[k]
				s3 += av * b3[k]
			}
			orow[j], orow[j+1], orow[j+2], orow[j+3] = s0, s1, s2, s3
		}
		for ; j < b.Rows; j++ {
			brow := b.Data[j*bc : (j+1)*bc]
			var s float64
			for k, av := range arow {
				s += av * brow[k]
			}
			orow[j] = s
		}
	}
}

// MatMulTransA returns aᵀ×b without materializing aᵀ.
func MatMulTransA(a, b *Matrix) *Matrix {
	out := New(a.Cols, b.Cols)
	MatMulTransAInto(out, a, b)
	return out
}

// MatMulTransAInto computes out = aᵀ×b, reusing out's storage. out must be
// a.Cols×b.Cols and must not alias a or b.
func MatMulTransAInto(out, a, b *Matrix) {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("tensor: matmulTransA shape mismatch (%dx%d)ᵀ · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if out.Rows != a.Cols || out.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: matmulTransA out shape %dx%d, want %dx%d", out.Rows, out.Cols, a.Cols, b.Cols))
	}
	mustNotAlias("matmulTransA", out, a, b)
	out.Zero()
	// The k-outer loop is a reduction over out's rows, so a row split
	// would interleave accumulation orders; splitting over output
	// *columns* keeps each element's ascending-k sum intact — workers own
	// disjoint column ranges and results stay bit-identical to serial.
	n := b.Cols
	flops := int64(a.Rows) * int64(a.Cols) * int64(n)
	if w := spanWorkers(n, flops); w > 1 {
		parallelRanges(n, w, func(jlo, jhi int) {
			matMulTransACols(out, a, b, jlo, jhi)
		})
		return
	}
	matMulTransACols(out, a, b, 0, n)
}

// matMulTransACols accumulates out[:, jlo:jhi) of out = aᵀ×b. Same
// k-outer accumulation as the allocating version, with the contiguous j
// loop unrolled 4 wide (see MatMulInto). out must be pre-zeroed.
func matMulTransACols(out, a, b *Matrix, jlo, jhi int) {
	n := b.Cols
	for k := 0; k < a.Rows; k++ {
		arow := a.Data[k*a.Cols : (k+1)*a.Cols]
		brow := b.Data[k*n : (k+1)*n]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			orow := out.Data[i*n : (i+1)*n]
			j := jlo
			for ; j+4 <= jhi; j += 4 {
				b4 := brow[j : j+4 : j+4]
				o4 := orow[j : j+4 : j+4]
				o4[0] += av * b4[0]
				o4[1] += av * b4[1]
				o4[2] += av * b4[2]
				o4[3] += av * b4[3]
			}
			for ; j < jhi; j++ {
				orow[j] += av * brow[j]
			}
		}
	}
}

// Transpose returns mᵀ.
func (m *Matrix) Transpose() *Matrix {
	t := New(m.Cols, m.Rows)
	TransposeInto(t, m)
	return t
}

// Add returns a+b elementwise.
func Add(a, b *Matrix) *Matrix {
	mustSameShape("add", a, b)
	out := a.Clone()
	for i, v := range b.Data {
		out.Data[i] += v
	}
	return out
}

// Sub returns a−b elementwise.
func Sub(a, b *Matrix) *Matrix {
	mustSameShape("sub", a, b)
	out := a.Clone()
	for i, v := range b.Data {
		out.Data[i] -= v
	}
	return out
}

// Mul returns the Hadamard (elementwise) product a∘b.
func Mul(a, b *Matrix) *Matrix {
	mustSameShape("mul", a, b)
	out := a.Clone()
	for i, v := range b.Data {
		out.Data[i] *= v
	}
	return out
}

// Scale returns s·m.
func Scale(m *Matrix, s float64) *Matrix {
	out := m.Clone()
	for i := range out.Data {
		out.Data[i] *= s
	}
	return out
}

// AddInPlace accumulates b into a.
func AddInPlace(a, b *Matrix) {
	mustSameShape("addInPlace", a, b)
	for i, v := range b.Data {
		a.Data[i] += v
	}
}

// AxpyInPlace accumulates s·b into a.
func AxpyInPlace(a *Matrix, s float64, b *Matrix) {
	mustSameShape("axpy", a, b)
	for i, v := range b.Data {
		a.Data[i] += s * v
	}
}

// AddRow returns m with the 1×cols row vector r added to every row.
func AddRow(m, r *Matrix) *Matrix {
	if r.Rows != 1 || r.Cols != m.Cols {
		panic(fmt.Sprintf("tensor: addRow wants 1x%d, got %dx%d", m.Cols, r.Rows, r.Cols))
	}
	out := m.Clone()
	for i := 0; i < m.Rows; i++ {
		row := out.Row(i)
		for j, v := range r.Data {
			row[j] += v
		}
	}
	return out
}

// Apply returns f applied to every element of m.
func Apply(m *Matrix, f func(float64) float64) *Matrix {
	out := New(m.Rows, m.Cols)
	for i, v := range m.Data {
		out.Data[i] = f(v)
	}
	return out
}

// Sum returns the sum of all elements.
func (m *Matrix) Sum() float64 {
	var s float64
	for _, v := range m.Data {
		s += v
	}
	return s
}

// Mean returns the mean of all elements (0 for an empty matrix).
func (m *Matrix) Mean() float64 {
	if len(m.Data) == 0 {
		return 0
	}
	return m.Sum() / float64(len(m.Data))
}

// MaxAbs returns the largest absolute element (0 for an empty matrix).
func (m *Matrix) MaxAbs() float64 {
	var best float64
	for _, v := range m.Data {
		if a := math.Abs(v); a > best {
			best = a
		}
	}
	return best
}

// ConcatCols concatenates matrices horizontally: all inputs must have the
// same number of rows.
func ConcatCols(ms ...*Matrix) *Matrix {
	if len(ms) == 0 {
		return New(0, 0)
	}
	rows := ms[0].Rows
	cols := 0
	for _, m := range ms {
		if m.Rows != rows {
			panic(fmt.Sprintf("tensor: concatCols row mismatch %d != %d", m.Rows, rows))
		}
		cols += m.Cols
	}
	out := New(rows, cols)
	for i := 0; i < rows; i++ {
		off := 0
		orow := out.Row(i)
		for _, m := range ms {
			copy(orow[off:off+m.Cols], m.Row(i))
			off += m.Cols
		}
	}
	return out
}

// ConcatRows concatenates matrices vertically: all inputs must have the
// same number of columns.
func ConcatRows(ms ...*Matrix) *Matrix {
	if len(ms) == 0 {
		return New(0, 0)
	}
	cols := ms[0].Cols
	rows := 0
	for _, m := range ms {
		if m.Cols != cols {
			panic(fmt.Sprintf("tensor: concatRows col mismatch %d != %d", m.Cols, cols))
		}
		rows += m.Rows
	}
	out := New(rows, cols)
	off := 0
	for _, m := range ms {
		copy(out.Data[off:off+len(m.Data)], m.Data)
		off += len(m.Data)
	}
	return out
}

// SliceRows returns rows [lo,hi) of m as a copy.
func (m *Matrix) SliceRows(lo, hi int) *Matrix {
	if lo < 0 || hi > m.Rows || lo > hi {
		panic(fmt.Sprintf("tensor: sliceRows [%d,%d) out of %d rows", lo, hi, m.Rows))
	}
	out := New(hi-lo, m.Cols)
	copy(out.Data, m.Data[lo*m.Cols:hi*m.Cols])
	return out
}

// AllClose reports whether a and b agree elementwise within tol.
func AllClose(a, b *Matrix, tol float64) bool {
	if !a.SameShape(b) {
		return false
	}
	for i, v := range a.Data {
		if math.Abs(v-b.Data[i]) > tol {
			return false
		}
	}
	return true
}

func mustSameShape(op string, a, b *Matrix) {
	if !a.SameShape(b) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %dx%d vs %dx%d", op, a.Rows, a.Cols, b.Rows, b.Cols))
	}
}
