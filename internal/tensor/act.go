package tensor

import (
	"fmt"
	"math"
)

// Act selects an activation for the fused and specialized elementwise
// kernels below. Keeping the enum at the tensor layer lets the hot
// forward path dispatch once per matrix instead of calling a function
// value per element — the autodiff tape maps its own activation enum
// onto this one.
type Act uint8

// Supported activations. Formulas match the autodiff ops bit for bit:
// sigmoid is 1/(1+e^−x), ReLU is max(0,x) with x>0 as the open branch.
const (
	ActNone Act = iota
	ActSigmoid
	ActTanh
	ActReLU
)

func sigmoidScalar(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// SigmoidInto computes out = σ(m) elementwise. out may alias m.
func SigmoidInto(out, m *Matrix) {
	mustOutShape("sigmoid", out, m)
	for i, v := range m.Data {
		out.Data[i] = sigmoidScalar(v)
	}
}

// TanhInto computes out = tanh(m) elementwise. out may alias m.
func TanhInto(out, m *Matrix) {
	mustOutShape("tanh", out, m)
	for i, v := range m.Data {
		out.Data[i] = math.Tanh(v)
	}
}

// ReLUInto computes out = max(0, m) elementwise. out may alias m.
func ReLUInto(out, m *Matrix) {
	mustOutShape("relu", out, m)
	for i, v := range m.Data {
		if v > 0 {
			out.Data[i] = v
		} else {
			out.Data[i] = 0
		}
	}
}

// AddRowActInto fuses bias broadcast and activation into one pass:
// out[i][j] = act(m[i][j] + r[j]). It is the specialized-dispatch variant
// of AddRowApplyInto — the activation is selected once per call, so the
// inner loops run without a per-element indirect call. out may alias m.
func AddRowActInto(out, m, r *Matrix, act Act) {
	if r.Rows != 1 || r.Cols != m.Cols {
		panic(fmt.Sprintf("tensor: addRowAct wants 1x%d, got %dx%d", m.Cols, r.Rows, r.Cols))
	}
	mustOutShape("addRowAct", out, m)
	for i := 0; i < m.Rows; i++ {
		src := m.Row(i)
		dst := out.Row(i)
		switch act {
		case ActNone:
			for j, v := range r.Data {
				dst[j] = src[j] + v
			}
		case ActSigmoid:
			for j, v := range r.Data {
				dst[j] = sigmoidScalar(src[j] + v)
			}
		case ActTanh:
			for j, v := range r.Data {
				dst[j] = math.Tanh(src[j] + v)
			}
		case ActReLU:
			for j, v := range r.Data {
				if x := src[j] + v; x > 0 {
					dst[j] = x
				} else {
					dst[j] = 0
				}
			}
		default:
			panic(fmt.Sprintf("tensor: unknown Act(%d)", act))
		}
	}
}
