package tensor

import (
	"math"
	"math/rand"
	"testing"
)

func randMat32(rng *rand.Rand, rows, cols int) *Matrix32 {
	m := New32(rows, cols)
	for i := range m.Data {
		m.Data[i] = float32(rng.NormFloat64())
	}
	return m
}

func mustEqual32(t *testing.T, got, want *Matrix32, label string) {
	t.Helper()
	if !got.SameShape(want) {
		t.Fatalf("%s: shape %dx%d, want %dx%d", label, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i, v := range got.Data {
		if v != want.Data[i] {
			t.Fatalf("%s: element %d = %g, want %g (bit-identical)", label, i, v, want.Data[i])
		}
	}
}

// TestMatMul32MatchesFloat64 pins the f32 kernels to the f64 reference
// within accumulation tolerance: same inputs narrowed to f32 must produce
// the same products up to rounding.
func TestMatMul32MatchesFloat64(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randMat(rng, 9, 17)
	b := randMat(rng, 17, 13)
	want := MatMul(a, b)

	a32, b32 := ToMatrix32(a), ToMatrix32(b)
	got := New32(9, 13)
	MatMul32Into(got, a32, b32)
	for i, v := range got.Data {
		if math.Abs(float64(v)-want.Data[i]) > 1e-4 {
			t.Fatalf("element %d: f32 %g vs f64 %g", i, v, want.Data[i])
		}
	}

	// a×bᵀ through the dedicated kernel.
	bt32 := ToMatrix32(b.Transpose())
	gotTB := New32(9, 13)
	MatMulTransB32Into(gotTB, a32, bt32)
	for i, v := range gotTB.Data {
		if math.Abs(float64(v)-want.Data[i]) > 1e-4 {
			t.Fatalf("transB element %d: f32 %g vs f64 %g", i, v, want.Data[i])
		}
	}
}

// TestParallelMatMul32BitIdenticalAcrossWorkers is the f32 version of the
// deterministic-split property test: every worker count must reproduce the
// serial result bit for bit, across both kernel paths and ragged splits.
func TestParallelMatMul32BitIdenticalAcrossWorkers(t *testing.T) {
	forceParallel(t)
	rng := rand.New(rand.NewSource(31))
	shapes := [][3]int{
		{1, 1, 1},
		{2, 3, 5},
		{7, 9, 13},
		{33, 17, 41},
		{12, 64, 1280}, // len(b.Data) = 81920 > regPathMaxBFloats32: streaming path
	}
	workers := []int{2, 3, 4, 7}
	for _, sh := range shapes {
		m, k, n := sh[0], sh[1], sh[2]
		a := randMat32(rng, m, k)
		b := randMat32(rng, k, n)
		bt := New32(n, k)
		for i := 0; i < k; i++ {
			for j := 0; j < n; j++ {
				bt.Set(j, i, b.At(i, j))
			}
		}
		q := Quantize8(b.ToMatrix())

		SetMatMulWorkers(1)
		want := New32(m, n)
		MatMul32Into(want, a, b)
		wantTB := New32(m, n)
		MatMulTransB32Into(wantTB, a, bt)
		wantQ := New32(m, n)
		MatMulQ32Into(wantQ, a, q)

		for _, w := range workers {
			SetMatMulWorkers(w)
			got := randMat32(rng, m, n) // dirty output: kernels must overwrite fully
			MatMul32Into(got, a, b)
			mustEqual32(t, got, want, "MatMul32Into parallel")

			gotTB := randMat32(rng, m, n)
			MatMulTransB32Into(gotTB, a, bt)
			mustEqual32(t, gotTB, wantTB, "MatMulTransB32Into parallel")

			gotQ := randMat32(rng, m, n)
			MatMulQ32Into(gotQ, a, q)
			mustEqual32(t, gotQ, wantQ, "MatMulQ32Into parallel")
		}
	}
}

// TestQuantize8RoundTrip bounds the dequantization error at half a step
// per element and checks the all-zero-row edge case.
func TestQuantize8RoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	m := randMat(rng, 12, 30)
	for j := 0; j < m.Cols; j++ {
		m.Set(5, j, 0) // all-zero row: scale must be 0, dequant exactly 0
	}
	q := Quantize8(m)
	dq := q.Dequantize()
	for i := 0; i < m.Rows; i++ {
		var maxAbs float64
		for _, v := range m.Row(i) {
			if a := math.Abs(v); a > maxAbs {
				maxAbs = a
			}
		}
		step := maxAbs / 127
		for j := 0; j < m.Cols; j++ {
			err := math.Abs(float64(dq.At(i, j)) - m.At(i, j))
			if err > step/2+1e-7 {
				t.Fatalf("(%d,%d): dequant err %g > half step %g", i, j, err, step/2)
			}
		}
	}
	if q.Scale[5] != 0 {
		t.Fatalf("all-zero row scale = %g, want 0", q.Scale[5])
	}
}

// TestMatMulQ32MatchesDequantized checks the fused dequant-accumulate
// kernel against multiplying by the materialized dequantized matrix. The
// two differ only in where the scale multiplies, so they agree within
// f32 rounding.
func TestMatMulQ32MatchesDequantized(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	a32 := randMat32(rng, 8, 24)
	w := randMat(rng, 24, 16)
	q := Quantize8(w)

	got := New32(8, 16)
	MatMulQ32Into(got, a32, q)
	ref := New32(8, 16)
	MatMul32Into(ref, a32, q.Dequantize())
	for i, v := range got.Data {
		if math.Abs(float64(v-ref.Data[i])) > 1e-3 {
			t.Fatalf("element %d: fused %g vs dequant-then-matmul %g", i, v, ref.Data[i])
		}
	}
}

// TestMatrix32Conversions pins narrowing/widening and the alias guards.
func TestMatrix32Conversions(t *testing.T) {
	m := FromRows([][]float64{{1.5, -2.25}, {0, 3}})
	m32 := ToMatrix32(m)
	back := m32.ToMatrix()
	for i, v := range m.Data {
		if back.Data[i] != v { // all values exactly representable in f32
			t.Fatalf("round trip element %d: %g != %g", i, back.Data[i], v)
		}
	}

	defer func() {
		if recover() == nil {
			t.Fatal("aliased matmul32 output did not panic")
		}
	}()
	MatMul32Into(m32, m32, m32)
}
