package tensor

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// This file holds the deterministic data-parallel driver for the matmul
// kernels. Large multiplications are split into contiguous output ranges
// (rows for MatMulInto/MatMulTransBInto, columns for MatMulTransAInto)
// and the ranges run on worker goroutines. Every output element is
// produced by exactly the same per-element loop the serial kernel runs —
// the split only partitions *which* elements a goroutine writes, never
// how any one element is accumulated — so results are bit-identical to
// the serial path for every worker count and every split boundary.
//
// Parallelism is a pure throughput knob, gated so small multiplications
// (the common case on attention-sized matrices) never pay goroutine
// overhead: a kernel only fans out when its FLOP count crosses
// MinParallelFlops and more than one worker is configured.

// defaultMatMulWorkers is the fan-out ceiling applied when the knob has
// not been set explicitly: one worker per available CPU.
func defaultMatMulWorkers() int32 { return int32(runtime.GOMAXPROCS(0)) }

var (
	matmulWorkers  atomic.Int32
	matmulMinFlops atomic.Int64
)

// MinParallelFlops is the default FLOP threshold (multiply-adds) below
// which a matmul always runs serially; spawning goroutines for less work
// than this costs more than it saves.
const MinParallelFlops = 1 << 17

func init() {
	matmulWorkers.Store(defaultMatMulWorkers())
	matmulMinFlops.Store(MinParallelFlops)
}

// SetMatMulWorkers sets the maximum goroutines a single large matmul may
// fan out across and returns the previous setting. n <= 1 forces the
// serial path; n > 1 enables the deterministic range split. Results are
// bit-identical for every setting.
func SetMatMulWorkers(n int) int {
	if n < 1 {
		n = 1
	}
	return int(matmulWorkers.Swap(int32(n)))
}

// MatMulWorkers returns the current fan-out ceiling.
func MatMulWorkers() int { return int(matmulWorkers.Load()) }

// SetMatMulMinFlops sets the FLOP threshold above which a matmul fans
// out, returning the previous value. Tests lower it to exercise the
// parallel path on small fixtures.
func SetMatMulMinFlops(n int64) int64 {
	if n < 0 {
		n = 0
	}
	return matmulMinFlops.Swap(n)
}

// spanWorkers decides how many goroutines to use for a kernel whose
// output splits into units independent slices of flops total work.
//
// Beyond the all-or-nothing serial gate, fan-out is scaled so every
// worker carries at least the configured flop floor: a multiplication
// barely past the threshold runs on 2 goroutines, not GOMAXPROCS. This
// matters when the caller is itself a worker pool (data-parallel
// Predict): letting borderline inner matmuls grab every core
// oversubscribes the machine and makes the outer parallelism a net
// loss. The floor only shapes *how many* ranges the output splits into,
// never how an element is accumulated, so the bit-identical contract is
// unaffected.
func spanWorkers(units int, flops int64) int {
	w := int(matmulWorkers.Load())
	if w <= 1 || units < 2 {
		return 1
	}
	if mf := matmulMinFlops.Load(); mf > 0 {
		if flops < 2*mf {
			return 1 // splitting would leave some worker under the floor
		}
		if maxW := int(flops / mf); maxW < w {
			w = maxW
		}
	}
	if w > units {
		w = units
	}
	return w
}

// parallelRanges runs fn over w contiguous ranges covering [0, units).
// The split depends only on (units, w), so a given configuration always
// produces the same ranges. fn must write only inside its range.
func parallelRanges(units, w int, fn func(lo, hi int)) {
	chunk := (units + w - 1) / w
	var wg sync.WaitGroup
	for lo := chunk; lo < units; lo += chunk {
		hi := lo + chunk
		if hi > units {
			hi = units
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	fn(0, chunk) // first range runs on the calling goroutine
	wg.Wait()
}

// rowView returns the contiguous [lo,hi) row window of m without copying.
func rowView(m *Matrix, lo, hi int) *Matrix {
	return &Matrix{Rows: hi - lo, Cols: m.Cols, Data: m.Data[lo*m.Cols : hi*m.Cols]}
}
