package tensor

import (
	"fmt"
	"math"
	"sync/atomic"
)

// This file is the reduced-precision mirror of matrix.go + kernels.go:
// dense float32 matrices, the blocked/parallel matmul kernels, the fused
// bias+activation pass, and a symmetric per-row int8 weight format with a
// dequantize-to-f32-accumulate matmul. The inference-only quantized model
// (core.QModel) runs entirely on these kernels.
//
// Determinism contract: identical to the float64 kernels, *within* f32 —
// every output element is accumulated in ascending k with zero operands
// skipped, by the same per-element loop regardless of kernel path or
// worker count, so results are bit-identical across SetMatMulWorkers
// settings. No contract is made between f32 and f64 results; that gap is
// what the accuracy gate (core.VerifyQuantized) measures.

// Matrix32 is a dense, row-major float32 matrix.
type Matrix32 struct {
	Rows, Cols int
	Data       []float32
}

// allocCount32 mirrors allocCount for the reduced-precision path: the
// quantized-inference regression tests pin the warm f32 predict path to a
// zero delta of this counter.
var allocCount32 atomic.Uint64

// Allocs32 returns the number of float32 matrices allocated by New32
// since process start. The counter only ever increases; callers compare
// deltas.
func Allocs32() uint64 { return allocCount32.Load() }

// New32 returns a zero-initialized rows×cols float32 matrix.
func New32(rows, cols int) *Matrix32 {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative dimension %dx%d", rows, cols))
	}
	allocCount32.Add(1)
	return &Matrix32{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// ToMatrix32 narrows a float64 matrix to float32. This is the post-training
// weight conversion: each element independently rounds to nearest-even.
func ToMatrix32(m *Matrix) *Matrix32 {
	out := New32(m.Rows, m.Cols)
	for i, v := range m.Data {
		out.Data[i] = float32(v)
	}
	return out
}

// ToMatrix widens m back to float64 (exact: every float32 is a float64).
func (m *Matrix32) ToMatrix() *Matrix {
	out := New(m.Rows, m.Cols)
	for i, v := range m.Data {
		out.Data[i] = float64(v)
	}
	return out
}

// At returns the element at row i, column j.
func (m *Matrix32) At(i, j int) float32 { return m.Data[i*m.Cols+j] }

// Set assigns the element at row i, column j.
func (m *Matrix32) Set(i, j int, v float32) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a slice sharing the matrix's backing array.
func (m *Matrix32) Row(i int) []float32 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Matrix32) Clone() *Matrix32 {
	c := New32(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Zero sets every element of m to zero.
func (m *Matrix32) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// SameShape reports whether m and o have identical dimensions.
func (m *Matrix32) SameShape(o *Matrix32) bool { return m.Rows == o.Rows && m.Cols == o.Cols }

func sameData32(a, b *Matrix32) bool {
	return len(a.Data) > 0 && len(b.Data) > 0 && &a.Data[0] == &b.Data[0]
}

func mustNotAlias32(op string, out, a, b *Matrix32) {
	if sameData32(out, a) || sameData32(out, b) {
		panic(fmt.Sprintf("tensor: %s out must not alias an input", op))
	}
}

func mustOutShape32(op string, out, want *Matrix32) {
	if !out.SameShape(want) {
		panic(fmt.Sprintf("tensor: %s out shape %dx%d, want %dx%d", op, out.Rows, out.Cols, want.Rows, want.Cols))
	}
}

func mustSameShape32(op string, a, b *Matrix32) {
	if !a.SameShape(b) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %dx%d vs %dx%d", op, a.Rows, a.Cols, b.Rows, b.Cols))
	}
}

// rowView32 returns the contiguous [lo,hi) row window of m without copying.
func rowView32(m *Matrix32, lo, hi int) *Matrix32 {
	return &Matrix32{Rows: hi - lo, Cols: m.Cols, Data: m.Data[lo*m.Cols : hi*m.Cols]}
}

// regPathMaxBFloats32 bounds len(b.Data) for the register-accumulator f32
// matmul path. float32 halves the bytes per element, so twice as many
// elements fit in the same cache budget as regPathMaxBFloats.
const regPathMaxBFloats32 = 1 << 16

// MatMul32Into computes out = a×b, reusing out's storage. out must be
// a.Rows×b.Cols and must not alias a or b. Same dual-kernel structure and
// deterministic range split as MatMulInto; bit-identical across worker
// counts within f32.
func MatMul32Into(out, a, b *Matrix32) {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: matmul32 shape mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if out.Rows != a.Rows || out.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: matmul32 out shape %dx%d, want %dx%d", out.Rows, out.Cols, a.Rows, b.Cols))
	}
	mustNotAlias32("matmul32", out, a, b)
	flops := int64(a.Rows) * int64(a.Cols) * int64(b.Cols)
	if w := spanWorkers(a.Rows, flops); w > 1 {
		parallelRanges(a.Rows, w, func(lo, hi int) {
			matMulRows32(rowView32(out, lo, hi), rowView32(a, lo, hi), b)
		})
		return
	}
	matMulRows32(out, a, b)
}

// matMulRows32 is the serial out = a×b float32 kernel over a contiguous
// row range: register (jik) path while b stays cache-resident, streaming
// (ikj) path past that. Per element both accumulate in ascending k with
// a-zeros skipped, so the path choice never shows up in the result.
func matMulRows32(out, a, b *Matrix32) {
	n := b.Cols
	if len(b.Data) <= regPathMaxBFloats32 {
		for i := 0; i < a.Rows; i++ {
			arow := a.Data[i*a.Cols : (i+1)*a.Cols]
			orow := out.Data[i*n : (i+1)*n]
			j := 0
			// 8-wide column blocks: float32 accumulators are cheap in
			// registers, and the wider block halves the slice/branch
			// overhead per multiply. Each output element still accumulates
			// in ascending k with a-zeros skipped, so the block width never
			// shows up in the result.
			for ; j+8 <= n; j += 8 {
				var s0, s1, s2, s3, s4, s5, s6, s7 float32
				idx := j
				for _, av := range arow {
					if av != 0 {
						b8 := b.Data[idx : idx+8 : idx+8]
						s0 += av * b8[0]
						s1 += av * b8[1]
						s2 += av * b8[2]
						s3 += av * b8[3]
						s4 += av * b8[4]
						s5 += av * b8[5]
						s6 += av * b8[6]
						s7 += av * b8[7]
					}
					idx += n
				}
				orow[j], orow[j+1], orow[j+2], orow[j+3] = s0, s1, s2, s3
				orow[j+4], orow[j+5], orow[j+6], orow[j+7] = s4, s5, s6, s7
			}
			for ; j+4 <= n; j += 4 {
				var s0, s1, s2, s3 float32
				idx := j
				for _, av := range arow {
					if av != 0 {
						b4 := b.Data[idx : idx+4 : idx+4]
						s0 += av * b4[0]
						s1 += av * b4[1]
						s2 += av * b4[2]
						s3 += av * b4[3]
					}
					idx += n
				}
				orow[j], orow[j+1], orow[j+2], orow[j+3] = s0, s1, s2, s3
			}
			for ; j < n; j++ {
				var s float32
				idx := j
				for _, av := range arow {
					if av != 0 {
						s += av * b.Data[idx]
					}
					idx += n
				}
				orow[j] = s
			}
		}
		return
	}
	out.Zero()
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		orow := out.Data[i*n : (i+1)*n]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[k*n : (k+1)*n]
			j := 0
			for ; j+4 <= n; j += 4 {
				b4 := brow[j : j+4 : j+4]
				o4 := orow[j : j+4 : j+4]
				o4[0] += av * b4[0]
				o4[1] += av * b4[1]
				o4[2] += av * b4[2]
				o4[3] += av * b4[3]
			}
			for ; j < n; j++ {
				orow[j] += av * brow[j]
			}
		}
	}
}

// MatMulAdd32Into computes out = base + a×b in one pass — one output
// write instead of a matmul write, an add read, and an add write. This is
// the stacked-LSTM recurrence step z = zx[t] + sh·Wh on the inference
// path. out must be a.Rows×b.Cols, base the same shape, and out must not
// alias a or b (out may alias base). Each element accumulates a×b in
// ascending k with a-zeros skipped and adds base at the store, so the
// result is bit-identical to MatMul32Into followed by Add32Into.
func MatMulAdd32Into(out, base, a, b *Matrix32) {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: matmulAdd32 shape mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if out.Rows != a.Rows || out.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: matmulAdd32 out shape %dx%d, want %dx%d", out.Rows, out.Cols, a.Rows, b.Cols))
	}
	mustOutShape32("matmulAdd32", base, out)
	mustNotAlias32("matmulAdd32", out, a, b)
	n := b.Cols
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		brow := base.Data[i*n : (i+1)*n]
		orow := out.Data[i*n : (i+1)*n]
		j := 0
		for ; j+8 <= n; j += 8 {
			var s0, s1, s2, s3, s4, s5, s6, s7 float32
			idx := j
			for _, av := range arow {
				if av != 0 {
					w8 := b.Data[idx : idx+8 : idx+8]
					s0 += av * w8[0]
					s1 += av * w8[1]
					s2 += av * w8[2]
					s3 += av * w8[3]
					s4 += av * w8[4]
					s5 += av * w8[5]
					s6 += av * w8[6]
					s7 += av * w8[7]
				}
				idx += n
			}
			b8 := brow[j : j+8 : j+8]
			orow[j], orow[j+1], orow[j+2], orow[j+3] = s0+b8[0], s1+b8[1], s2+b8[2], s3+b8[3]
			orow[j+4], orow[j+5], orow[j+6], orow[j+7] = s4+b8[4], s5+b8[5], s6+b8[6], s7+b8[7]
		}
		for ; j < n; j++ {
			var s float32
			idx := j
			for _, av := range arow {
				if av != 0 {
					s += av * b.Data[idx]
				}
				idx += n
			}
			orow[j] = s + brow[j]
		}
	}
}

// MatMulTransB32Into computes out = a×bᵀ without materializing bᵀ. out
// must be a.Rows×b.Rows and must not alias a or b.
func MatMulTransB32Into(out, a, b *Matrix32) {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: matmulTransB32 shape mismatch %dx%d · (%dx%d)ᵀ", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if out.Rows != a.Rows || out.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: matmulTransB32 out shape %dx%d, want %dx%d", out.Rows, out.Cols, a.Rows, b.Rows))
	}
	mustNotAlias32("matmulTransB32", out, a, b)
	flops := int64(a.Rows) * int64(a.Cols) * int64(b.Rows)
	if w := spanWorkers(a.Rows, flops); w > 1 {
		parallelRanges(a.Rows, w, func(lo, hi int) {
			matMulTransBRows32(rowView32(out, lo, hi), rowView32(a, lo, hi), b)
		})
		return
	}
	matMulTransBRows32(out, a, b)
}

func matMulTransBRows32(out, a, b *Matrix32) {
	bc := b.Cols
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		orow := out.Data[i*b.Rows : (i+1)*b.Rows]
		j := 0
		for ; j+4 <= b.Rows; j += 4 {
			b0 := b.Data[j*bc : (j+1)*bc]
			b1 := b.Data[(j+1)*bc : (j+2)*bc]
			b2 := b.Data[(j+2)*bc : (j+3)*bc]
			b3 := b.Data[(j+3)*bc : (j+4)*bc]
			var s0, s1, s2, s3 float32
			for k, av := range arow {
				s0 += av * b0[k]
				s1 += av * b1[k]
				s2 += av * b2[k]
				s3 += av * b3[k]
			}
			orow[j], orow[j+1], orow[j+2], orow[j+3] = s0, s1, s2, s3
		}
		for ; j < b.Rows; j++ {
			brow := b.Data[j*bc : (j+1)*bc]
			var s float32
			for k, av := range arow {
				s += av * brow[k]
			}
			orow[j] = s
		}
	}
}

// Add32Into computes out = a+b elementwise. out may alias a or b.
func Add32Into(out, a, b *Matrix32) {
	mustSameShape32("add32", a, b)
	mustOutShape32("add32", out, a)
	for i, v := range a.Data {
		out.Data[i] = v + b.Data[i]
	}
}

// Mul32Into computes the Hadamard product out = a∘b. out may alias a or b.
func Mul32Into(out, a, b *Matrix32) {
	mustSameShape32("mul32", a, b)
	mustOutShape32("mul32", out, a)
	for i, v := range a.Data {
		out.Data[i] = v * b.Data[i]
	}
}

// Scale32Into computes out = s·m. out may alias m.
func Scale32Into(out, m *Matrix32, s float32) {
	mustOutShape32("scale32", out, m)
	for i, v := range m.Data {
		out.Data[i] = v * s
	}
}

// Tanh32Into computes out = tanh(m) elementwise through the all-f32
// Tanh32 kernel. out may alias m.
func Tanh32Into(out, m *Matrix32) {
	mustOutShape32("tanh32", out, m)
	for i, v := range m.Data {
		out.Data[i] = Tanh32(v)
	}
}

// AddRowAct32Into fuses bias broadcast and activation into one pass:
// out[i][j] = act(m[i][j] + r[j]). The transcendental activations run
// through the all-f32 fast kernels (Sigmoid32/Tanh32) — a few ulps from
// the rounded float64 result, well inside the gate's quantization
// budget, and several times cheaper than converting to float64 and back
// around the math library. out may alias m.
func AddRowAct32Into(out, m, r *Matrix32, act Act) {
	if r.Rows != 1 || r.Cols != m.Cols {
		panic(fmt.Sprintf("tensor: addRowAct32 wants 1x%d, got %dx%d", m.Cols, r.Rows, r.Cols))
	}
	mustOutShape32("addRowAct32", out, m)
	for i := 0; i < m.Rows; i++ {
		src := m.Row(i)
		dst := out.Row(i)
		switch act {
		case ActNone:
			for j, v := range r.Data {
				dst[j] = src[j] + v
			}
		case ActSigmoid:
			for j, v := range r.Data {
				dst[j] = Sigmoid32(src[j] + v)
			}
		case ActTanh:
			for j, v := range r.Data {
				dst[j] = Tanh32(src[j] + v)
			}
		case ActReLU:
			for j, v := range r.Data {
				if x := src[j] + v; x > 0 {
					dst[j] = x
				} else {
					dst[j] = 0
				}
			}
		default:
			panic(fmt.Sprintf("tensor: unknown Act(%d)", act))
		}
	}
}

// LSTMCell32Into applies one fused LSTM cell update. z is the batch×4h
// pre-activation (stacked input projection plus recurrent term) in gate
// order i|f|g|o, b the 1×4h packed gate bias, sc the batch×h cell state
// (updated in place), and sh the batch×h output hidden state:
//
//	i,f,o = σ(z+b)   g = tanh(z+b)
//	sc    = f∘sc + i∘g
//	sh    = o ∘ tanh(sc)
//
// One pass replaces the unfused form's four column slices, four bias+
// activation kernels, and five elementwise ops per step — the inference-
// only f32 path can fuse what the float64 tape must keep separate for the
// backward pass. Elements are independent, so the kernel keeps the
// bit-identical-across-worker-counts contract. sh must not alias z or sc.
func LSTMCell32Into(sh, sc, z, b *Matrix32) {
	h := sc.Cols
	if z.Rows != sc.Rows || z.Cols != 4*h {
		panic(fmt.Sprintf("tensor: lstmCell32 z shape %dx%d, want %dx%d", z.Rows, z.Cols, sc.Rows, 4*h))
	}
	if b.Rows != 1 || b.Cols != 4*h {
		panic(fmt.Sprintf("tensor: lstmCell32 bias shape %dx%d, want 1x%d", b.Rows, b.Cols, 4*h))
	}
	mustOutShape32("lstmCell32", sh, sc)
	if sameData32(sh, z) || sameData32(sh, sc) {
		panic("tensor: lstmCell32 sh must not alias z or sc")
	}
	bi, bf, bg, bo := b.Data[:h], b.Data[h:2*h], b.Data[2*h:3*h], b.Data[3*h:4*h]
	for r := 0; r < z.Rows; r++ {
		zr := z.Row(r)
		zi, zf, zg, zo := zr[:h], zr[h:2*h], zr[2*h:3*h], zr[3*h:4*h]
		scr := sc.Row(r)
		shr := sh.Row(r)
		for j := 0; j < h; j++ {
			i := Sigmoid32(zi[j] + bi[j])
			f := Sigmoid32(zf[j] + bf[j])
			g := Tanh32(zg[j] + bg[j])
			o := Sigmoid32(zo[j] + bo[j])
			c := f*scr[j] + i*g
			scr[j] = c
			shr[j] = o * Tanh32(c)
		}
	}
}

// QMatrix8 is a weight matrix quantized to int8 with a symmetric per-row
// scale: element (i,j) dequantizes to float32(Data[i*Cols+j]) * Scale[i].
// Rows of a weight matrix are quantized independently because their
// dynamic ranges differ (per-row maxabs/127), which is what keeps the
// scheme accurate enough for the gate without zero points.
type QMatrix8 struct {
	Rows, Cols int
	Data       []int8
	Scale      []float32 // len Rows
}

// Quantize8 converts a float64 weight matrix to symmetric per-row int8.
// scale_i = maxabs(row_i)/127; values round to nearest, ties away from
// zero. An all-zero row gets scale 0 and contributes exactly 0.
func Quantize8(m *Matrix) *QMatrix8 {
	q := &QMatrix8{
		Rows:  m.Rows,
		Cols:  m.Cols,
		Data:  make([]int8, m.Rows*m.Cols),
		Scale: make([]float32, m.Rows),
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		var maxAbs float64
		for _, v := range row {
			if a := math.Abs(v); a > maxAbs {
				maxAbs = a
			}
		}
		if maxAbs == 0 {
			continue
		}
		scale := maxAbs / 127
		q.Scale[i] = float32(scale)
		qrow := q.Data[i*m.Cols : (i+1)*m.Cols]
		for j, v := range row {
			qrow[j] = int8(math.Round(v / scale))
		}
	}
	return q
}

// Dequantize expands q back to float32 (for tests and debugging; the hot
// path never materializes this).
func (q *QMatrix8) Dequantize() *Matrix32 {
	out := New32(q.Rows, q.Cols)
	for i := 0; i < q.Rows; i++ {
		s := q.Scale[i]
		qrow := q.Data[i*q.Cols : (i+1)*q.Cols]
		orow := out.Data[i*q.Cols : (i+1)*q.Cols]
		for j, v := range qrow {
			orow[j] = float32(v) * s
		}
	}
	return out
}

// MatMulQ32Into computes out = a × dequant(b) with the dequantization
// fused into the accumulation: for each k the scalar a[i][k]*Scale[k] is
// formed once in f32 and streamed against b's int8 row. Accumulation is
// ascending-k with zero scalars skipped — the same per-element order for
// every worker count, so the bit-identical contract holds. out must be
// a.Rows×b.Cols and must not alias a.
func MatMulQ32Into(out, a *Matrix32, b *QMatrix8) {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: matmulQ32 shape mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if out.Rows != a.Rows || out.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: matmulQ32 out shape %dx%d, want %dx%d", out.Rows, out.Cols, a.Rows, b.Cols))
	}
	if sameData32(out, a) {
		panic("tensor: matmulQ32 out must not alias an input")
	}
	flops := int64(a.Rows) * int64(a.Cols) * int64(b.Cols)
	if w := spanWorkers(a.Rows, flops); w > 1 {
		parallelRanges(a.Rows, w, func(lo, hi int) {
			matMulQRows32(rowView32(out, lo, hi), rowView32(a, lo, hi), b)
		})
		return
	}
	matMulQRows32(out, a, b)
}

func matMulQRows32(out, a *Matrix32, b *QMatrix8) {
	n := b.Cols
	out.Zero()
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		orow := out.Data[i*n : (i+1)*n]
		for k, av := range arow {
			s := av * b.Scale[k]
			if s == 0 {
				continue
			}
			brow := b.Data[k*n : (k+1)*n]
			j := 0
			for ; j+4 <= n; j += 4 {
				b4 := brow[j : j+4 : j+4]
				o4 := orow[j : j+4 : j+4]
				o4[0] += s * float32(b4[0])
				o4[1] += s * float32(b4[1])
				o4[2] += s * float32(b4[2])
				o4[3] += s * float32(b4[3])
			}
			for ; j < n; j++ {
				orow[j] += s * float32(brow[j])
			}
		}
	}
}
