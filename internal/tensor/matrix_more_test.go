package tensor

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func expectPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s should panic", name)
		}
	}()
	f()
}

func TestShapePanics(t *testing.T) {
	expectPanic(t, "ConcatCols row mismatch", func() {
		ConcatCols(New(2, 1), New(3, 1))
	})
	expectPanic(t, "ConcatRows col mismatch", func() {
		ConcatRows(New(1, 2), New(1, 3))
	})
	expectPanic(t, "AddRow shape", func() {
		AddRow(New(2, 3), New(1, 2))
	})
	expectPanic(t, "SliceRows bounds", func() {
		New(2, 2).SliceRows(1, 5)
	})
	expectPanic(t, "Add shape", func() {
		Add(New(1, 2), New(2, 1))
	})
	expectPanic(t, "negative dims", func() {
		New(-1, 2)
	})
	expectPanic(t, "MatMulInto out shape", func() {
		MatMulInto(New(1, 1), New(2, 3), New(3, 2))
	})
}

func TestConcatEmptyInputs(t *testing.T) {
	if m := ConcatCols(); m.Rows != 0 || m.Cols != 0 {
		t.Fatalf("empty ConcatCols = %v", m)
	}
	if m := ConcatRows(); m.Rows != 0 || m.Cols != 0 {
		t.Fatalf("empty ConcatRows = %v", m)
	}
}

func TestConcatSliceRoundTrip(t *testing.T) {
	// Splitting a matrix into column blocks and re-concatenating must be
	// the identity.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 1 + rng.Intn(5)
		a := Randn(rows, 3, 1, rng)
		b := Randn(rows, 2, 1, rng)
		joined := ConcatCols(a, b)
		backA := New(rows, 3)
		backB := New(rows, 2)
		for i := 0; i < rows; i++ {
			copy(backA.Row(i), joined.Row(i)[:3])
			copy(backB.Row(i), joined.Row(i)[3:])
		}
		return AllClose(a, backA, 0) && AllClose(b, backB, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRowAliasesBackingArray(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	m.Row(1)[0] = 99
	if m.At(1, 0) != 99 {
		t.Fatal("Row should alias the matrix storage")
	}
}

func TestFillAndZero(t *testing.T) {
	m := New(2, 2)
	m.Fill(7)
	if m.Sum() != 28 {
		t.Fatalf("Fill: %v", m)
	}
	m.Zero()
	if m.Sum() != 0 {
		t.Fatalf("Zero: %v", m)
	}
}

func TestUniformRange(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := Uniform(10, 10, -2, 3, rng)
	for _, v := range m.Data {
		if v < -2 || v > 3 {
			t.Fatalf("uniform value %v outside [-2,3]", v)
		}
	}
}
