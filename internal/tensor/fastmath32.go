package tensor

import "math"

// Fast float32 transcendentals for the reduced-precision inference path.
// The float64 kernels call the math library (math.Exp, math.Tanh); doing
// that from f32 pays two conversions around a double-precision routine
// whose accuracy the narrow result then throws away. These variants
// compute entirely in float32: a Cephes-style expf (range reduction by
// log2(e), degree-5 polynomial, exponent reassembly through the float32
// bit pattern, ~3e-7 relative error) for softmax, and a piecewise-linear
// sigmoid table serving both gate activations (σ directly, tanh through
// 2σ(2x)−1) at ≲1e-5 absolute error — three orders of magnitude inside
// the quantization error the accuracy gate budgets for.
//
// Determinism: each function is a pure branch-and-arithmetic sequence
// over its argument, so results are identical wherever they are called
// from — the kernels built on them keep the bit-identical-across-worker-
// counts contract.

const (
	exp32Hi = 88.0              // keeps n = round(x·log2e) ≤ 127 (finite 2^n)
	exp32Lo = -87.3365447504019 // smallest x before the result underflows
	log2e32 = 1.44269504088896341

	// two-part ln 2 for the range reduction r = x − n·ln2
	expC1 = 0.693359375
	expC2 = -2.12194440e-4

	// e^r on [−ln2/2, ln2/2]: e^r ≈ 1 + r + r²·P(r)
	expP0 = 1.9875691500e-4
	expP1 = 1.3981999507e-3
	expP2 = 8.3334519073e-3
	expP3 = 4.1665795894e-2
	expP4 = 1.6666665459e-1
	expP5 = 5.0000001201e-1
)

// Exp32 returns e^x computed entirely in float32. Out-of-range arguments
// saturate: large x clamps to e^88 ≈ 1.7e38, x below −87.3 returns 0.
func Exp32(x float32) float32 {
	if x > exp32Hi {
		x = exp32Hi
	}
	if x < exp32Lo {
		return 0
	}
	// n = floor(x·log2e + 0.5), branch-free: fx+256 is always positive,
	// so the truncating int conversion is a floor.
	fx := log2e32*x + 0.5
	n := int32(fx+256) - 256
	z := float32(n)
	r := x - z*expC1
	r -= z * expC2
	y := ((((expP0*r+expP1)*r+expP2)*r+expP3)*r+expP4)*r + expP5
	y = y*(r*r) + r + 1
	return y * pow2i32(n)
}

// pow2i32 returns 2^n for n in [−126, 127] via the float32 bit pattern.
func pow2i32(n int32) float32 {
	return math.Float32frombits(uint32(n+127) << 23)
}

// The sigmoid table: σ sampled on sigTabN+1 evenly spaced points over
// [−sigTabMax, sigTabMax], interpolated linearly between neighbors. One
// 8 KiB table serves both gate activations — tanh(x) = 2σ(2x)−1 — and it
// stays hot in L1 through an LSTM unroll. A lookup is two loads and a
// handful of multiplies: no exponential, and unlike the algebraic forms
// of σ and tanh, no float division, which is what makes the quantized
// gate pass measurably cheaper than the float64 one. Max interpolation
// error is ~4e-6 for σ and ~8e-6 for tanh (σ''·h²/8 with h≈0.018);
// beyond the clamp σ is within float32 rounding of 0 or 1.
const (
	sigTabBits = 11
	sigTabN    = 1 << sigTabBits
	sigTabMax  = 18.0
)

var sigTab = func() [sigTabN + 1]float32 {
	var t [sigTabN + 1]float32
	for i := range t {
		x := -sigTabMax + float64(i)*(2*sigTabMax)/sigTabN
		t[i] = float32(1 / (1 + math.Exp(-x)))
	}
	// Pin the endpoints to the asymptotes (σ(±18) is within 2e-8 of
	// them) so clamped lookups saturate exactly: closed gates multiply
	// by 0, and tanh's 2σ−1 lands on ±1 in the tails.
	t[0], t[sigTabN] = 0, 1
	return t
}()

const sigTabScale = sigTabN / (2 * sigTabMax)

// Sigmoid32 returns 1/(1+e^{−x}) in float32 via the interpolated table.
// NaN propagates (the index conversion clamps, but callers never feed
// NaN from finite weights and inputs).
func Sigmoid32(x float32) float32 {
	fx := (x + sigTabMax) * sigTabScale
	if fx <= 0 {
		return sigTab[0]
	}
	if fx >= sigTabN {
		return sigTab[sigTabN]
	}
	i := int32(fx)
	y0 := sigTab[i]
	return y0 + (fx-float32(i))*(sigTab[i+1]-y0)
}

// Tanh32 returns tanh(x) in float32 via the identity tanh(x) = 2σ(2x)−1
// on the same table.
func Tanh32(x float32) float32 {
	return 2*Sigmoid32(2*x) - 1
}
