package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// TestFastMath32Accuracy sweeps the fast f32 transcendentals against the
// float64 math library over the range inference actually exercises and
// pins the documented error budgets: ~3e-7 relative for Exp32, ≲1e-5
// absolute for the table-interpolated sigmoid/tanh.
func TestFastMath32Accuracy(t *testing.T) {
	for x := -30.0; x <= 30.0; x += 0.0037 {
		xf := float32(x)

		if got, want := float64(Exp32(xf)), math.Exp(float64(xf)); x >= -87 && x <= 88 {
			if rel := math.Abs(got-want) / want; rel > 1e-6 {
				t.Fatalf("Exp32(%v) = %g, want %g (rel err %g)", xf, got, want, rel)
			}
		}
		if got, want := float64(Sigmoid32(xf)), 1/(1+math.Exp(-float64(xf))); math.Abs(got-want) > 1e-5 {
			t.Fatalf("Sigmoid32(%v) = %g, want %g", xf, got, want)
		}
		if got, want := float64(Tanh32(xf)), math.Tanh(float64(xf)); math.Abs(got-want) > 2e-5 {
			t.Fatalf("Tanh32(%v) = %g, want %g", xf, got, want)
		}
	}

	// Saturation: the tails must land exactly on the asymptotes so gates
	// can close completely.
	for _, x := range []float32{-1e4, -100, 100, 1e4} {
		if s := Sigmoid32(x); s != 0 && s != 1 {
			if x < 0 && s > 1e-7 || x > 0 && s < 1-1e-6 {
				t.Fatalf("Sigmoid32(%v) = %v, want saturated", x, s)
			}
		}
		want := float32(1)
		if x < 0 {
			want = -1
		}
		if g := Tanh32(x); g != want {
			t.Fatalf("Tanh32(%v) = %v, want %v", x, g, want)
		}
	}
	if Exp32(-1000) != 0 {
		t.Fatal("Exp32 underflow must return 0")
	}
	if e := Exp32(1000); math.IsInf(float64(e), 1) || e < 1e38 {
		t.Fatalf("Exp32 overflow clamp returned %v", e)
	}
}

// TestLSTMCell32MatchesUnfused checks the fused cell kernel against the
// op-by-op formulation it replaced, built from the same fast scalars.
func TestLSTMCell32MatchesUnfused(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const batch, h = 5, 7
	z := New32(batch, 4*h)
	b := New32(1, 4*h)
	sc := New32(batch, h)
	for i := range z.Data {
		z.Data[i] = float32(rng.NormFloat64())
	}
	for i := range b.Data {
		b.Data[i] = float32(rng.NormFloat64())
	}
	for i := range sc.Data {
		sc.Data[i] = float32(rng.NormFloat64())
	}

	wantSC := sc.Clone()
	wantSH := New32(batch, h)
	for r := 0; r < batch; r++ {
		for j := 0; j < h; j++ {
			i := Sigmoid32(z.At(r, j) + b.Data[j])
			f := Sigmoid32(z.At(r, h+j) + b.Data[h+j])
			g := Tanh32(z.At(r, 2*h+j) + b.Data[2*h+j])
			o := Sigmoid32(z.At(r, 3*h+j) + b.Data[3*h+j])
			c := f*wantSC.At(r, j) + i*g
			wantSC.Set(r, j, c)
			wantSH.Set(r, j, o*Tanh32(c))
		}
	}

	sh := New32(batch, h)
	LSTMCell32Into(sh, sc, z, b)
	for i := range sh.Data {
		if sh.Data[i] != wantSH.Data[i] {
			t.Fatalf("sh[%d] = %v, want %v", i, sh.Data[i], wantSH.Data[i])
		}
		if sc.Data[i] != wantSC.Data[i] {
			t.Fatalf("sc[%d] = %v, want %v", i, sc.Data[i], wantSC.Data[i])
		}
	}
}

// TestMatMulAdd32MatchesSeparate checks the fused base+a×b kernel against
// MatMul32Into followed by Add32Into, bit for bit — the fusion saves
// passes, not precision, because both initialize the accumulator with the
// base value before the ascending-k accumulation.
func TestMatMulAdd32MatchesSeparate(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, n := range []int{1, 3, 8, 11, 19} { // spans the 8-wide and tail paths
		a := New32(6, 13)
		b := New32(13, n)
		base := New32(6, n)
		for i := range a.Data {
			a.Data[i] = float32(rng.NormFloat64())
		}
		a.Data[7] = 0 // exercise the zero-skip
		for i := range b.Data {
			b.Data[i] = float32(rng.NormFloat64())
		}
		for i := range base.Data {
			base.Data[i] = float32(rng.NormFloat64())
		}

		want := New32(6, n)
		MatMul32Into(want, a, b)
		Add32Into(want, want, base)

		got := New32(6, n)
		MatMulAdd32Into(got, base, a, b)
		for i := range got.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("n=%d: element %d = %v, want %v", n, i, got.Data[i], want.Data[i])
			}
		}
	}
}
