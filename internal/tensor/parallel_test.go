package tensor

import (
	"math/rand"
	"testing"
)

// forceParallel drops the FLOP gate so the range-split path engages on
// test-sized fixtures, and restores both knobs on cleanup.
func forceParallel(t *testing.T) {
	t.Helper()
	prevW := MatMulWorkers()
	prevF := SetMatMulMinFlops(0)
	t.Cleanup(func() {
		SetMatMulWorkers(prevW)
		SetMatMulMinFlops(prevF)
	})
}

// TestParallelMatMulBitIdenticalAcrossWorkers is the property test behind
// the deterministic-split claim: for every kernel, every worker count, and
// shapes covering both the register and streaming paths (len(b.Data)
// below and above regPathMaxBFloats), the parallel result must equal the
// serial result bit for bit — including the unroll tails and rows/cols
// that don't divide evenly across workers.
func TestParallelMatMulBitIdenticalAcrossWorkers(t *testing.T) {
	forceParallel(t)
	rng := rand.New(rand.NewSource(23))
	shapes := [][3]int{
		{1, 1, 1},     // degenerate: nothing to split
		{2, 3, 5},     // fewer rows than most worker counts
		{7, 9, 13},    // odd everything: unroll tails + ragged split
		{16, 8, 24},   // even split
		{33, 17, 41},  // ragged split, register path
		{12, 64, 640}, // len(b.Data) = 40960 > regPathMaxBFloats: streaming path
	}
	workers := []int{2, 3, 4, 7}
	for _, sh := range shapes {
		m, k, n := sh[0], sh[1], sh[2]
		a := randMat(rng, m, k)
		b := randMat(rng, k, n)
		at := a.Transpose()
		bt := b.Transpose()

		SetMatMulWorkers(1)
		want := MatMul(a, b)
		wantTA := MatMulTransA(at, b)
		wantTB := MatMulTransB(a, bt)

		for _, w := range workers {
			SetMatMulWorkers(w)
			got := randMat(rng, m, n) // dirty output: kernels must overwrite fully
			MatMulInto(got, a, b)
			mustEqual(t, got, want, "MatMulInto parallel")

			gotTA := randMat(rng, m, n)
			MatMulTransAInto(gotTA, at, b)
			mustEqual(t, gotTA, wantTA, "MatMulTransAInto parallel")

			gotTB := randMat(rng, m, n)
			MatMulTransBInto(gotTB, a, bt)
			mustEqual(t, gotTB, wantTB, "MatMulTransBInto parallel")
		}
	}
}

// TestRegisterAndStreamingPathsBitIdentical pins the two serial MatMul
// loop orders to each other across the size threshold: per output element
// both accumulate in ascending k with a-zeros skipped, so the path choice
// must never show up in the result.
func TestRegisterAndStreamingPathsBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	a := randMat(rng, 9, 31)
	b := randMat(rng, 31, 27)
	reg := New(a.Rows, b.Cols)
	matMulRows(reg, a, b) // len(b.Data) small: register path

	// Build the same product through views of an oversized b embedding so
	// the streaming path runs on identical values: simpler, just call the
	// streaming branch by constructing a naive reference instead.
	want := naiveMatMul(a, b)
	mustEqual(t, reg, want, "register path vs naive")

	big := randMat(rng, 64, 1024) // 65536 floats > regPathMaxBFloats
	abig := randMat(rng, 3, 64)
	stream := New(3, 1024)
	matMulRows(stream, abig, big)
	mustEqual(t, stream, naiveMatMul(abig, big), "streaming path vs naive")
}

// TestMatMulWorkerKnobs pins the knob contract: setters return the
// previous value and out-of-range requests clamp.
func TestMatMulWorkerKnobs(t *testing.T) {
	prev := SetMatMulWorkers(5)
	if got := MatMulWorkers(); got != 5 {
		t.Fatalf("MatMulWorkers() = %d, want 5", got)
	}
	if got := SetMatMulWorkers(0); got != 5 {
		t.Fatalf("SetMatMulWorkers(0) returned %d, want previous 5", got)
	}
	if got := MatMulWorkers(); got != 1 {
		t.Fatalf("workers after clamp = %d, want 1", got)
	}
	SetMatMulWorkers(prev)

	prevF := SetMatMulMinFlops(-3)
	if got := SetMatMulMinFlops(prevF); got != 0 {
		t.Fatalf("negative min-flops should clamp to 0, got %d", got)
	}
}
