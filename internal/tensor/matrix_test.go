package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewZeroed(t *testing.T) {
	m := New(3, 4)
	if m.Rows != 3 || m.Cols != 4 || len(m.Data) != 12 {
		t.Fatalf("bad shape: %v", m)
	}
	for _, v := range m.Data {
		if v != 0 {
			t.Fatalf("not zeroed: %v", m.Data)
		}
	}
}

func TestFromRowsAndAt(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if m.At(0, 1) != 2 || m.At(2, 0) != 5 {
		t.Fatalf("At wrong: %v", m)
	}
	m.Set(1, 1, 9)
	if m.At(1, 1) != 9 {
		t.Fatalf("Set failed")
	}
}

func TestFromSliceLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromSlice(2, 2, []float64{1, 2, 3})
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestMatMul(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	b := FromRows([][]float64{{7, 8}, {9, 10}, {11, 12}})
	got := MatMul(a, b)
	want := FromRows([][]float64{{58, 64}, {139, 154}})
	if !AllClose(got, want, 1e-12) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestMatMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := Randn(4, 4, 1, rng)
	id := New(4, 4)
	for i := 0; i < 4; i++ {
		id.Set(i, i, 1)
	}
	if !AllClose(MatMul(a, id), a, 1e-12) {
		t.Fatal("A·I != A")
	}
	if !AllClose(MatMul(id, a), a, 1e-12) {
		t.Fatal("I·A != A")
	}
}

func TestMatMulShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MatMul(New(2, 3), New(2, 3))
}

func TestMatMulTransB(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := Randn(3, 5, 1, rng)
	b := Randn(4, 5, 1, rng)
	if !AllClose(MatMulTransB(a, b), MatMul(a, b.Transpose()), 1e-12) {
		t.Fatal("MatMulTransB disagrees with explicit transpose")
	}
}

func TestMatMulTransA(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := Randn(5, 3, 1, rng)
	b := Randn(5, 4, 1, rng)
	if !AllClose(MatMulTransA(a, b), MatMul(a.Transpose(), b), 1e-12) {
		t.Fatal("MatMulTransA disagrees with explicit transpose")
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 1 + rng.Intn(6)
		cols := 1 + rng.Intn(6)
		m := Randn(rows, cols, 1, rng)
		return AllClose(m.Transpose().Transpose(), m, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddSubMulScale(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	if !AllClose(Add(a, b), FromRows([][]float64{{6, 8}, {10, 12}}), 0) {
		t.Fatal("Add wrong")
	}
	if !AllClose(Sub(b, a), FromRows([][]float64{{4, 4}, {4, 4}}), 0) {
		t.Fatal("Sub wrong")
	}
	if !AllClose(Mul(a, b), FromRows([][]float64{{5, 12}, {21, 32}}), 0) {
		t.Fatal("Mul wrong")
	}
	if !AllClose(Scale(a, 2), FromRows([][]float64{{2, 4}, {6, 8}}), 0) {
		t.Fatal("Scale wrong")
	}
}

func TestAddDistributesOverMatMul(t *testing.T) {
	// (A+B)·C == A·C + B·C
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, n := 1+rng.Intn(5), 1+rng.Intn(5), 1+rng.Intn(5)
		a := Randn(m, k, 1, rng)
		b := Randn(m, k, 1, rng)
		c := Randn(k, n, 1, rng)
		lhs := MatMul(Add(a, b), c)
		rhs := Add(MatMul(a, c), MatMul(b, c))
		return AllClose(lhs, rhs, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddRow(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	r := RowVector([]float64{10, 20})
	want := FromRows([][]float64{{11, 22}, {13, 24}})
	if !AllClose(AddRow(m, r), want, 0) {
		t.Fatal("AddRow wrong")
	}
}

func TestConcatCols(t *testing.T) {
	a := FromRows([][]float64{{1}, {2}})
	b := FromRows([][]float64{{3, 4}, {5, 6}})
	got := ConcatCols(a, b)
	want := FromRows([][]float64{{1, 3, 4}, {2, 5, 6}})
	if !AllClose(got, want, 0) {
		t.Fatalf("got %v", got)
	}
}

func TestConcatRows(t *testing.T) {
	a := FromRows([][]float64{{1, 2}})
	b := FromRows([][]float64{{3, 4}, {5, 6}})
	got := ConcatRows(a, b)
	want := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if !AllClose(got, want, 0) {
		t.Fatalf("got %v", got)
	}
}

func TestSliceRows(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	got := m.SliceRows(1, 3)
	want := FromRows([][]float64{{3, 4}, {5, 6}})
	if !AllClose(got, want, 0) {
		t.Fatal("SliceRows wrong")
	}
	// mutation of the slice must not touch the original
	got.Set(0, 0, 99)
	if m.At(1, 0) != 3 {
		t.Fatal("SliceRows aliases parent")
	}
}

func TestSumMeanMaxAbs(t *testing.T) {
	m := FromRows([][]float64{{-3, 1}, {2, 0}})
	if m.Sum() != 0 {
		t.Fatalf("Sum=%v", m.Sum())
	}
	if m.Mean() != 0 {
		t.Fatalf("Mean=%v", m.Mean())
	}
	if m.MaxAbs() != 3 {
		t.Fatalf("MaxAbs=%v", m.MaxAbs())
	}
}

func TestApply(t *testing.T) {
	m := FromRows([][]float64{{1, 4}, {9, 16}})
	got := Apply(m, math.Sqrt)
	want := FromRows([][]float64{{1, 2}, {3, 4}})
	if !AllClose(got, want, 1e-12) {
		t.Fatal("Apply wrong")
	}
}

func TestCloneIndependence(t *testing.T) {
	m := FromRows([][]float64{{1, 2}})
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone aliases source")
	}
}

func TestAxpyInPlace(t *testing.T) {
	a := FromRows([][]float64{{1, 2}})
	b := FromRows([][]float64{{10, 20}})
	AxpyInPlace(a, 0.5, b)
	if !AllClose(a, FromRows([][]float64{{6, 12}}), 1e-12) {
		t.Fatalf("axpy got %v", a)
	}
}

func TestMatMulAssociativity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := Randn(3, 4, 1, rng)
		b := Randn(4, 5, 1, rng)
		c := Randn(5, 2, 1, rng)
		return AllClose(MatMul(MatMul(a, b), c), MatMul(a, MatMul(b, c)), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMatMul64(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := Randn(64, 64, 1, rng)
	y := Randn(64, 64, 1, rng)
	out := New(64, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulInto(out, x, y)
	}
}
