package raal

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

var (
	sysOnce sync.Once
	sysInst *System
	dsInst  *Dataset
	cmInst  *CostModel
	sysErr  error
)

// sharedSystem builds one small system + dataset + model for all tests.
func sharedSystem(t *testing.T) (*System, *Dataset, *CostModel) {
	t.Helper()
	sysOnce.Do(func() {
		sysInst, sysErr = Open(IMDB, 0.03, 1)
		if sysErr != nil {
			return
		}
		dsInst, sysErr = sysInst.Collect(CollectOptions{NumQueries: 80, ResStatesPerPlan: 2})
		if sysErr != nil {
			return
		}
		cmInst, _, sysErr = TrainCostModel(dsInst, RAAL(), TrainOptions{Epochs: 15, LR: 5e-3})
	})
	if sysErr != nil {
		t.Fatal(sysErr)
	}
	return sysInst, dsInst, cmInst
}

func TestOpenErrors(t *testing.T) {
	if _, err := Open("bogus", 0.1, 1); err == nil {
		t.Fatal("unknown benchmark should error")
	}
	if _, err := Open(IMDB, 0, 1); err == nil {
		t.Fatal("zero scale should error")
	}
}

func TestOpenTPCH(t *testing.T) {
	sys, err := Open(TPCH, 0.05, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(sys.Tables()) != 8 {
		t.Fatalf("TPC-H should have 8 tables, got %v", sys.Tables())
	}
}

func TestPlanExecuteCost(t *testing.T) {
	sys, _, _ := sharedSystem(t)
	plans, err := sys.Plan(`SELECT COUNT(*) FROM title t, movie_companies mc WHERE t.id = mc.movie_id`)
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) < 2 {
		t.Fatalf("want multiple candidates, got %d", len(plans))
	}
	rel, err := sys.Execute(plans[0])
	if err != nil {
		t.Fatal(err)
	}
	if rel.N != 1 {
		t.Fatalf("aggregate should return 1 row, got %d", rel.N)
	}
	sec, err := sys.Cost(plans[0], DefaultResources())
	if err != nil {
		t.Fatal(err)
	}
	if sec <= 0 {
		t.Fatalf("cost %v", sec)
	}
}

func TestRunConvenience(t *testing.T) {
	sys, _, _ := sharedSystem(t)
	rel, sec, err := sys.Run(`SELECT COUNT(*) FROM movie_keyword mk WHERE mk.keyword_id < 100`, DefaultResources())
	if err != nil {
		t.Fatal(err)
	}
	if rel.N != 1 || sec <= 0 {
		t.Fatalf("rel %v sec %v", rel.N, sec)
	}
}

func TestTrainedModelQuality(t *testing.T) {
	_, ds, cm := sharedSystem(t)
	samples := cm.EncodeDataset(ds)
	m, err := cm.EvaluateOn(samples)
	if err != nil {
		t.Fatal(err)
	}
	// In-sample fit of a trained model must correlate strongly.
	if m.COR < 0.5 {
		t.Fatalf("trained model too weak: %v", m)
	}
}

func TestEstimateAndSelectPlan(t *testing.T) {
	sys, _, cm := sharedSystem(t)
	query := `SELECT COUNT(*) FROM title t, movie_companies mc WHERE t.id = mc.movie_id AND mc.company_id < 50`
	plans, err := sys.Plan(query)
	if err != nil {
		t.Fatal(err)
	}
	res := DefaultResources()
	for _, p := range plans {
		if est := cm.Estimate(p, res); est < 0 || math.IsNaN(est) {
			t.Fatalf("bad estimate %v", est)
		}
	}
	best, pred, err := sys.SelectPlan(cm, query, res)
	if err != nil {
		t.Fatal(err)
	}
	if best == nil || pred < 0 {
		t.Fatalf("selection failed: %v %v", best, pred)
	}
	// The selected plan's prediction must be the minimum.
	preds := cm.EstimateBatch(plans[:min(3, len(plans))], res)
	for _, p := range preds {
		if pred > p+1e-9 {
			t.Fatalf("selected plan prediction %v not minimal among %v", pred, preds)
		}
	}
}

func TestSelectPlanEmpty(t *testing.T) {
	_, _, cm := sharedSystem(t)
	if p, _ := cm.SelectPlan(nil, DefaultResources()); p != nil {
		t.Fatal("empty candidate set should return nil")
	}
}

// TestCostModelSaveLoadFile round-trips through an actual file, the way
// raaltrain -out / raalquery -model do. Regression test: an *os.File is
// not an io.ByteReader, so each gob section's decoder used to wrap it in
// its own read-ahead buffer and desynchronize the following sections —
// bytes.Buffer round trips always worked while file loads always failed.
func TestCostModelSaveLoadFile(t *testing.T) {
	sys, _, cm := sharedSystem(t)
	path := filepath.Join(t.TempDir(), "model.raal")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := cm.Save(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	in, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	restored, err := LoadCostModel(in)
	if err != nil {
		t.Fatalf("loading model from file: %v", err)
	}
	plans, err := sys.Plan(`SELECT COUNT(*) FROM movie_keyword mk WHERE mk.keyword_id < 100`)
	if err != nil {
		t.Fatal(err)
	}
	res := DefaultResources()
	a := cm.Estimate(plans[0], res)
	b := restored.Estimate(plans[0], res)
	if math.Abs(a-b) > 1e-9 {
		t.Fatalf("file-restored model predicts %v, original %v", b, a)
	}
}

func TestCostModelSaveLoad(t *testing.T) {
	sys, _, cm := sharedSystem(t)
	var buf bytes.Buffer
	if err := cm.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadCostModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Variant().Name != cm.Variant().Name {
		t.Fatal("variant not restored")
	}
	plans, err := sys.Plan(`SELECT COUNT(*) FROM movie_keyword mk WHERE mk.keyword_id < 100`)
	if err != nil {
		t.Fatal(err)
	}
	res := DefaultResources()
	a := cm.Estimate(plans[0], res)
	b := restored.Estimate(plans[0], res)
	if math.Abs(a-b) > 1e-9 {
		t.Fatalf("restored model predicts %v, original %v", b, a)
	}
}

func TestTrainCostModelErrors(t *testing.T) {
	if _, _, err := TrainCostModel(nil, RAAL(), TrainOptions{}); err == nil {
		t.Fatal("nil dataset should error")
	}
}

func TestCollectFixedResources(t *testing.T) {
	sys, _, _ := sharedSystem(t)
	fixed := DefaultResources()
	ds, err := sys.Collect(CollectOptions{NumQueries: 10, FixedRes: &fixed, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range ds.Records {
		if r.Res != fixed {
			t.Fatal("fixed resources not honored")
		}
	}
}

func TestRecommendResources(t *testing.T) {
	sys, _, cm := sharedSystem(t)
	plans, err := sys.Plan(`SELECT COUNT(*) FROM title t, movie_companies mc WHERE t.id = mc.movie_id`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Execute(plans[0]); err != nil {
		t.Fatal(err)
	}
	grid := DefaultResourceGrid()
	if len(grid) != 4*3*5 {
		t.Fatalf("grid size %d", len(grid))
	}
	best, pred := cm.RecommendResources(plans[0], grid)
	if err := best.Validate(); err != nil {
		t.Fatalf("recommended invalid resources: %v", err)
	}
	if pred < 0 || math.IsNaN(pred) {
		t.Fatalf("bad predicted cost %v", pred)
	}
	// The recommendation must be the grid's argmin of the model.
	for _, res := range grid {
		if cm.Estimate(plans[0], res) < pred-1e-9 {
			t.Fatalf("grid point cheaper than recommendation: %v vs %v",
				cm.Estimate(plans[0], res), pred)
		}
	}
	// Empty grid is well-defined.
	if _, p := cm.RecommendResources(plans[0], nil); p != 0 {
		t.Fatal("empty grid should return zero")
	}
}

func TestCostBreakdownExported(t *testing.T) {
	sys, _, _ := sharedSystem(t)
	plans, err := sys.Plan(`SELECT COUNT(*) FROM movie_keyword mk WHERE mk.keyword_id < 100`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Execute(plans[0]); err != nil {
		t.Fatal(err)
	}
	b, err := sys.CostBreakdown(plans[0], DefaultResources())
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Stages) == 0 || b.TotalSec <= 0 {
		t.Fatalf("degenerate breakdown: %+v", b)
	}
}

func TestVariantsExported(t *testing.T) {
	for _, v := range []Variant{RAAL(), NELSTM(), NALSTM(), RAAC()} {
		if v.Name == "" {
			t.Fatal("variant missing name")
		}
	}
	if !RAAL().ResourceAttention {
		t.Fatal("RAAL must be resource-aware")
	}
	if RAAL().WithoutResources().ResourceAttention {
		t.Fatal("WithoutResources must disable resource attention")
	}
}

func TestEvaluateExported(t *testing.T) {
	m, err := Evaluate([]float64{1, 2, 3}, []float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.COR-1) > 1e-9 {
		t.Fatalf("COR %v", m.COR)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
