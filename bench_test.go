package raal

// One benchmark per table and figure of the paper's evaluation (Sec. V),
// wrapping the internal/experiments harness. Run:
//
//	go test -bench=. -benchmem
//
// Each benchmark regenerates its experiment end to end on shared
// quick-size settings (see EXPERIMENTS.md for the full-size runs driven by
// cmd/raalbench). b.N loops re-run the experiment; the interesting output
// is the experiment's own report, which the benchmarks verify for shape.

import (
	"fmt"
	"sync"
	"testing"

	"raal/internal/core"
	"raal/internal/experiments"
)

var (
	benchOnce sync.Once
	benchLab  *experiments.Lab
	benchErr  error
)

func sharedBenchLab(b *testing.B) *experiments.Lab {
	b.Helper()
	benchOnce.Do(func() {
		opt := experiments.QuickOptions()
		opt.NumQueries = 100
		opt.Epochs = 10
		benchLab, benchErr = experiments.NewLab(opt)
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchLab
}

func BenchmarkFig1DefaultVsTuned(b *testing.B) {
	lab := sharedBenchLab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig1(lab)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Rows) != 20 {
			b.Fatalf("want 20 queries, got %d", len(r.Rows))
		}
		if r.TotalTuned() > r.TotalDefault()*1.05 {
			b.Fatalf("tuned total %.1f should not exceed default %.1f",
				r.TotalTuned(), r.TotalDefault())
		}
	}
}

func BenchmarkFig2MemoryImpact(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig2(0.2, 1)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Points) == 0 {
			b.Fatal("no points")
		}
	}
}

func BenchmarkTable4Ablation(b *testing.B) {
	lab := sharedBenchLab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Ablation(lab)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Rows) != 4 {
			b.Fatal("want 4 variants")
		}
	}
}

func BenchmarkFig6LossCurves(b *testing.B) {
	lab := sharedBenchLab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Ablation(lab)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Curves) != 4 {
			b.Fatal("want 4 curves")
		}
	}
}

func BenchmarkTable5VsTLSTM(b *testing.B) {
	opt := experiments.QuickOptions()
	opt.NumQueries = 80
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table5(opt)
		if err != nil {
			b.Fatal(err)
		}
		_ = r.RAAL
	}
}

func BenchmarkTable6VsGPSJ(b *testing.B) {
	lab := sharedBenchLab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table6(lab)
		if err != nil {
			b.Fatal(err)
		}
		if r.GPSJ.MSE <= r.RAAL.MSE {
			b.Fatalf("GPSJ (%.3f) should not beat RAAL (%.3f) on MSE", r.GPSJ.MSE, r.RAAL.MSE)
		}
	}
}

func BenchmarkTable7ResourceAttention(b *testing.B) {
	lab := sharedBenchLab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table7(lab)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Rows) != 4 {
			b.Fatal("want 4 architectures")
		}
	}
}

func BenchmarkFig7Scatter(b *testing.B) {
	lab := sharedBenchLab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig7(lab)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.WithRes) == 0 {
			b.Fatal("no scatter points")
		}
	}
}

func BenchmarkFig8Adaptability(b *testing.B) {
	lab := sharedBenchLab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig8(lab)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Rows) == 0 {
			b.Fatal("no environments")
		}
	}
}

func BenchmarkTable8TrainingScale(b *testing.B) {
	lab := sharedBenchLab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table8(lab)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Rows) < 3 {
			b.Fatal("too few size levels")
		}
	}
}

func BenchmarkTable9Inference(b *testing.B) {
	lab := sharedBenchLab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table9(lab)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Rows) != 3 {
			b.Fatal("want 3 models")
		}
	}
}

func BenchmarkEncodingAblation(b *testing.B) {
	lab := sharedBenchLab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.EncAblation(lab); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimAblation(b *testing.B) {
	lab := sharedBenchLab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.SimAblation(lab); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAQEComparison(b *testing.B) {
	lab := sharedBenchLab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := experiments.AQE(lab)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Rows) != 20 {
			b.Fatal("want 20 queries")
		}
	}
}

func BenchmarkDriftRetraining(b *testing.B) {
	opt := experiments.QuickOptions()
	opt.NumQueries = 60
	opt.Epochs = 10
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Drift(opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTransferColdStart(b *testing.B) {
	opt := experiments.QuickOptions()
	opt.NumQueries = 60
	opt.Epochs = 10
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Transfer(opt); err != nil {
			b.Fatal(err)
		}
	}
}

// Micro-benchmarks of the hot paths.

func BenchmarkCostModelInference(b *testing.B) {
	lab := sharedBenchLab(b)
	model, _, err := lab.TrainVariant(RAAL())
	if err != nil {
		b.Fatal(err)
	}
	samples := lab.TestSamples
	if len(samples) > 64 {
		samples = samples[:64]
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model.Predict(samples)
	}
}

// BenchmarkCostModelInferenceWorkers scores the lab's full test set at
// several worker counts; predictions are bit-identical across rows, so
// the column is pure throughput (see README "Parallel training &
// inference").
func BenchmarkCostModelInferenceWorkers(b *testing.B) {
	lab := sharedBenchLab(b)
	model, _, err := lab.TrainVariant(RAAL())
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			opt := core.PredictOpts{Workers: workers, ChunkSize: 32}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				model.PredictWith(lab.TestSamples, opt)
			}
		})
	}
}

func BenchmarkSimulatorEstimate(b *testing.B) {
	lab := sharedBenchLab(b)
	if len(lab.TestRecs) == 0 {
		b.Skip("no records")
	}
	rec := lab.TestRecs[0]
	sys, err := Open(IMDB, 0.03, 1)
	if err != nil {
		b.Fatal(err)
	}
	res := DefaultResources()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Cost(rec.Plan, res); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPlanEnumeration(b *testing.B) {
	sys, err := Open(IMDB, 0.03, 1)
	if err != nil {
		b.Fatal(err)
	}
	query := `SELECT COUNT(*) FROM title t, movie_companies mc, movie_keyword mk
		WHERE t.id = mc.movie_id AND t.id = mk.movie_id AND mc.company_id < 100`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Plan(query); err != nil {
			b.Fatal(err)
		}
	}
}
