package raal

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"log/slog"
	"net/http"

	"raal/internal/core"
	"raal/internal/online"
	"raal/internal/telemetry"
	"raal/internal/workload"
)

// Checkpoint files bundle a cost model with its resumable training state
// under their own magic, so `raaltrain -resume` can continue a run with
// bit-reproducible results and a model file handed to -resume fails with
// a clear "not a checkpoint" error.
const (
	checkpointMagic        = "RAALck"
	checkpointVersion byte = 1
)

// TrainState is the resumable half of a training run: the optimizer
// moments and the position in the seeded shuffle stream. Produced by
// TrainCostModel (TrainReport.State), persisted by SaveCheckpoint, and
// consumed by ResumeCostModel.
type TrainState = core.TrainState

// SaveCheckpoint writes a resumable training checkpoint: the cost model
// (encoder + weights) followed by its training state.
func SaveCheckpoint(w io.Writer, cm *CostModel, st *TrainState) error {
	if st == nil {
		return fmt.Errorf("raal: cannot checkpoint without a training state (train with TrainCostModel and use TrainReport.State)")
	}
	if err := core.WriteHeader(w, checkpointMagic, checkpointVersion); err != nil {
		return err
	}
	if err := cm.Save(w); err != nil {
		return err
	}
	return st.Save(w)
}

// LoadCheckpoint reads a checkpoint written by SaveCheckpoint. Truncated,
// corrupt, foreign, and version-mismatched files are rejected with
// descriptive errors.
func LoadCheckpoint(r io.Reader) (*CostModel, *TrainState, error) {
	// Several gob sections share the stream; see LoadCostModel for why
	// they must share one buffered reader.
	if _, ok := r.(io.ByteReader); !ok {
		r = bufio.NewReader(r)
	}
	if err := core.ReadHeader(r, checkpointMagic, checkpointVersion, "training checkpoint"); err != nil {
		return nil, nil, err
	}
	cm, err := LoadCostModel(r)
	if err != nil {
		return nil, nil, err
	}
	st, err := core.LoadTrainState(r)
	if err != nil {
		return nil, nil, err
	}
	return cm, st, nil
}

// ResumeCostModel continues training cm in place from st on ds: the
// dataset is encoded with cm's already-fitted encoder (never refit — the
// feature space must stay the one the weights were trained in), the
// train/test split uses opt.TrainFrac and opt.Seed exactly as
// TrainCostModel does (pass the same values to continue on the same
// split), and Fit warm-starts from st, so resuming a run reproduces the
// uninterrupted run bit for bit. st is updated in place and remains
// checkpointable. A state whose optimizer snapshot does not match cm's
// architecture is rejected with a descriptive error.
func ResumeCostModel(cm *CostModel, st *TrainState, ds *Dataset, opt TrainOptions) (*TrainReport, error) {
	if ds == nil || len(ds.Records) == 0 {
		return nil, fmt.Errorf("raal: empty dataset")
	}
	if st == nil {
		return nil, fmt.Errorf("raal: nil training state (load one with LoadCheckpoint)")
	}
	if opt.TrainFrac == 0 {
		opt.TrainFrac = 0.8
	}
	if opt.Seed == 0 {
		opt.Seed = 1
	}
	samples := ds.Encode(cm.enc)
	train, test := workload.Split(samples, opt.TrainFrac, opt.Seed)
	if len(train) == 0 {
		return nil, fmt.Errorf("raal: train split is empty")
	}
	tc := core.DefaultTrainConfig()
	if opt.Epochs > 0 {
		tc.Epochs = opt.Epochs
	}
	if opt.Batch > 0 {
		tc.Batch = opt.Batch
	}
	if opt.LR > 0 {
		tc.LR = opt.LR
	}
	tc.Seed = opt.Seed
	tc.Workers = opt.Workers
	tc.ShardSize = opt.ShardSize
	tc.Progress = opt.Progress
	if opt.Metrics != nil {
		tc.Instr = core.NewInstrumentation(opt.Metrics)
	}
	tc.State = st
	tr, err := cm.model.Fit(train, tc)
	if err != nil {
		return nil, err
	}
	report := &TrainReport{
		TrainSamples: len(train),
		TestSamples:  len(test),
		LossCurve:    tr.LossCurve,
		State:        st,
	}
	if len(test) > 0 {
		if report.Held, err = cm.model.Evaluate(test); err != nil {
			return nil, err
		}
	}
	return report, nil
}

// OnlineOptions tunes NewOnlineServing. The zero value is a working
// in-memory loop with the defaults documented on online.Config.
type OnlineOptions struct {
	// Dir, if non-empty, is the snapshot registry directory: every model
	// generation is persisted there with an integrity checksum, and a
	// restarted server resumes the manifest's champion.
	Dir string
	// ReplayCap bounds the replay reservoir (default 512).
	ReplayCap int
	// DriftWindow, DriftQuantile, DriftThreshold configure the rolling
	// q-error drift detector (defaults 64, 0.9, 2.0).
	DriftWindow    int
	DriftQuantile  float64
	DriftThreshold float64
	// MinRetrain and ShadowMin gate retraining and the shadow verdict
	// (defaults 64 and 32); Cooldown spaces automatic retrains (default
	// DriftWindow).
	MinRetrain int
	ShadowMin  int
	Cooldown   int
	// RetrainEpochs is the warm-start Fit length per challenger
	// (default 10); RetrainWorkers its data parallelism.
	RetrainEpochs  int
	RetrainWorkers int
	Seed           int64
	// Precision selects the serving numeric format (default f64). With a
	// reduced precision every champion generation still trains and
	// persists in float64 and is re-quantized at promotion time behind
	// the accuracy gate; a refused gate serves float64 and increments
	// raal_quant_gate_failures_total. See CostModel.EnablePrecision for
	// the single-model equivalent.
	Precision Precision
	// GateSamples seeds the quantization accuracy gate until the replay
	// buffer has content; MaxQDelta is the gate's q-error delta bound
	// (default 0.05).
	GateSamples []*Sample
	MaxQDelta   float64
	// Metrics, if non-nil, receives the raal_online_* metric set.
	Metrics *telemetry.Registry
	// Logger, if non-nil, narrates drift triggers and promotions.
	Logger *slog.Logger
}

// OnlineServing serves estimates from a hot-swappable champion model
// while feeding observed outcomes back into the online learning loop
// (drift detection → replay-buffer retrain → shadow scoring → atomic
// promotion). It reuses cm's fitted encoder and encode cache for every
// generation — only the network weights change across promotions, never
// the feature space.
type OnlineServing struct {
	cm  *CostModel
	mgr *online.Manager
}

// NewOnlineServing wires the loop around cm as the bootstrap champion.
// st may be nil (the challenger then warm-starts from a cold optimizer);
// pass TrainReport.State or a loaded checkpoint state to make challenger
// training a true continuation.
func NewOnlineServing(cm *CostModel, st *TrainState, opt OnlineOptions) (*OnlineServing, error) {
	cfg := online.Config{
		ReplayCap:      opt.ReplayCap,
		Seed:           opt.Seed,
		DriftWindow:    opt.DriftWindow,
		DriftQuantile:  opt.DriftQuantile,
		DriftThreshold: opt.DriftThreshold,
		MinRetrain:     opt.MinRetrain,
		ShadowMin:      opt.ShadowMin,
		Cooldown:       opt.Cooldown,
		Precision:      opt.Precision,
		GateSamples:    opt.GateSamples,
		MaxQDelta:      opt.MaxQDelta,
		Logger:         opt.Logger,
	}
	cfg.Train.Epochs = opt.RetrainEpochs
	cfg.Train.Workers = opt.RetrainWorkers
	if opt.Metrics != nil {
		cfg.Metrics = online.NewMetrics(opt.Metrics)
	}
	if opt.Dir != "" {
		reg, err := online.OpenRegistry(opt.Dir)
		if err != nil {
			return nil, err
		}
		cfg.Registry = reg
	}
	mgr, err := online.NewManager(cm.model, st, cfg)
	if err != nil {
		return nil, err
	}
	return &OnlineServing{cm: cm, mgr: mgr}, nil
}

// versionPrecision is the precision one loaded generation serves at.
func versionPrecision(v *online.Version) Precision {
	if v.Q != nil {
		return v.Q.Precision
	}
	return PrecisionF64
}

// championPredictCtx scores samples with one loaded generation, at its
// quantized precision when the gate admitted a snapshot for it and on
// its float64 weights otherwise.
func championPredictCtx(ctx context.Context, v *online.Version, samples []*Sample, opt core.PredictOpts) ([]float64, error) {
	if v.Q != nil {
		return v.Q.PredictCtx(ctx, samples, opt)
	}
	return v.Model.PredictCtx(ctx, samples, opt)
}

// EstimateCtx prices p under res with the current champion. The champion
// pointer is loaded once per call, so a concurrent promotion is invisible
// mid-request — the prediction comes entirely from one generation (and
// one precision).
func (o *OnlineServing) EstimateCtx(ctx context.Context, p *Plan, res Resources) (float64, error) {
	o.cm.api.estimates.Inc()
	v := o.mgr.Champion()
	s := o.cm.encodePlanAt(versionPrecision(v).String(), p, res)
	preds, err := championPredictCtx(ctx, v, []*Sample{s}, core.PredictOpts{})
	if err != nil {
		return 0, err
	}
	return preds[0], nil
}

// EstimateBatchCtx prices candidate plans under one allocation with the
// current champion (one champion load for the whole batch).
func (o *OnlineServing) EstimateBatchCtx(ctx context.Context, plans []*Plan, res Resources, opt PredictOpts) ([]float64, error) {
	o.cm.api.estimates.Inc()
	v := o.mgr.Champion()
	samples := make([]*Sample, len(plans))
	for i, p := range plans {
		samples[i] = o.cm.encodePlanAt(versionPrecision(v).String(), p, res)
	}
	return championPredictCtx(ctx, v, samples, opt)
}

// EstimateEachCtx prices many independent (plan, resources) pairs in one
// forward pass of the current champion — the micro-batching backend.
func (o *OnlineServing) EstimateEachCtx(ctx context.Context, plans []*Plan, res []Resources, opt PredictOpts) ([]float64, error) {
	if len(plans) != len(res) {
		return nil, fmt.Errorf("raal: EstimateEachCtx got %d plan(s) but %d resource allocation(s)", len(plans), len(res))
	}
	o.cm.api.estimates.Inc()
	v := o.mgr.Champion()
	samples := make([]*Sample, len(plans))
	for i, p := range plans {
		samples[i] = o.cm.encodePlanAt(versionPrecision(v).String(), p, res[i])
	}
	return championPredictCtx(ctx, v, samples, opt)
}

// Feedback ingests one observed outcome: the plan and allocation that
// were served, the prediction that was returned, and the execution time
// then actually observed. This is the loop's only learning input; call
// it from a feedback worker (it retrains synchronously when drift
// triggers), never from a request path.
func (o *OnlineServing) Feedback(p *Plan, res Resources, predicted, actual float64) {
	s := o.cm.encodePlan(p, res)
	o.mgr.Observe(s, predicted, actual)
}

// AdminHandler returns the /models admin surface (list, promote,
// rollback, pin) for mounting on an operator-facing mux.
func (o *OnlineServing) AdminHandler() http.Handler { return o.mgr.AdminHandler() }

// ChampionVersion returns the generation number currently serving.
func (o *OnlineServing) ChampionVersion() int { return o.mgr.Champion().Num }

// Precision returns the serving precision of the current champion: the
// configured reduced precision when its quantized snapshot passed the
// accuracy gate, PrecisionF64 otherwise.
func (o *OnlineServing) Precision() Precision { return versionPrecision(o.mgr.Champion()) }

// Status returns the loop's current state (what GET /models serves).
func (o *OnlineServing) Status() online.Status { return o.mgr.Status() }
