// Command benchdiff compares two machine-readable benchmark reports
// (BENCH_*.json, written by raalbench -json) and fails when the new run
// regresses, gating performance in CI the way tests gate correctness.
//
// Usage:
//
//	benchdiff old.json new.json                 # fail on >15% ns/op regression
//	benchdiff -threshold 0.05 old.json new.json # tighter gate
//
// Benchmarks present in only one file are reported but never fail the
// diff, so adding or retiring a benchmark does not break the gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

type bench struct {
	Name     string  `json:"name"`
	NsOp     float64 `json:"ns_op"`
	AllocsOp float64 `json:"allocs_op"`
	BytesOp  float64 `json:"bytes_op"`
}

type report struct {
	Benchmarks []bench `json:"benchmarks"`
}

func main() {
	threshold := flag.Float64("threshold", 0.15, "maximum tolerated ns/op regression as a fraction (0.15 = +15%)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: benchdiff [-threshold frac] old.json new.json\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}

	oldRep, err := load(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	newRep, err := load(flag.Arg(1))
	if err != nil {
		fatal(err)
	}

	oldBy := make(map[string]bench, len(oldRep.Benchmarks))
	for _, b := range oldRep.Benchmarks {
		oldBy[b.Name] = b
	}

	fmt.Printf("%-24s %14s %14s %9s %12s\n", "benchmark", "old ns/op", "new ns/op", "delta", "allocs old→new")
	failed := false
	seen := make(map[string]bool, len(newRep.Benchmarks))
	for _, nb := range newRep.Benchmarks {
		seen[nb.Name] = true
		ob, ok := oldBy[nb.Name]
		if !ok {
			fmt.Printf("%-24s %14s %14.0f %9s %12s\n", nb.Name, "-", nb.NsOp, "new", "-")
			continue
		}
		delta := 0.0
		if ob.NsOp > 0 {
			delta = nb.NsOp/ob.NsOp - 1
		}
		mark := ""
		if delta > *threshold {
			mark = "  REGRESSION"
			failed = true
		}
		fmt.Printf("%-24s %14.0f %14.0f %+8.1f%% %6.0f→%-6.0f%s\n",
			nb.Name, ob.NsOp, nb.NsOp, delta*100, ob.AllocsOp, nb.AllocsOp, mark)
	}
	for _, ob := range oldRep.Benchmarks {
		if !seen[ob.Name] {
			fmt.Printf("%-24s %14.0f %14s %9s %12s\n", ob.Name, ob.NsOp, "-", "gone", "-")
		}
	}

	if failed {
		fmt.Fprintf(os.Stderr, "benchdiff: ns/op regressed beyond +%.0f%%\n", *threshold*100)
		os.Exit(1)
	}
}

func load(path string) (*report, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r report
	if err := json.Unmarshal(raw, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(r.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks in report", path)
	}
	return &r, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(1)
}
