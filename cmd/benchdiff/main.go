// Command benchdiff compares two machine-readable benchmark reports
// (BENCH_*.json, written by raalbench -json) and fails when the new run
// regresses, gating performance in CI the way tests gate correctness.
//
// Usage:
//
//	benchdiff old.json new.json                 # fail on >15% ns/op regression
//	benchdiff -threshold 0.05 old.json new.json # tighter gate
//	benchdiff -metric 'allocs_op=0' \
//	          -metric 'qdelta_p90/f32<=0.05' \
//	          -metric 'speedup/f32>=1.2' old.json new.json
//
// The -threshold flag gates every benchmark's ns/op as a relative
// regression. Repeatable -metric flags add further gates:
//
//   - field=frac, field one of ns_op, allocs_op, bytes_op: the field may
//     not regress by more than frac on any benchmark present in both
//     reports (allocs_op=0 means "no new allocations, anywhere"). A
//     baseline of exactly 0 tolerates no increase at all — a fraction of
//     zero is meaningless, and a zero-alloc path going non-zero is
//     precisely the regression worth catching.
//   - name<=bound / name>=bound: an absolute bound on the named entry of
//     the new report's top-level "metrics" map (raalbench -exp quant
//     records q-error deltas and speedups there). A gated metric missing
//     from the new report fails — silently dropping the measurement must
//     not pass the gate.
//   - name=frac for a metrics-map entry: relative gate against the old
//     report's value, with the same zero-baseline rule as bench fields.
//
// Benchmarks present in only one file are reported but never fail the
// diff, so adding or retiring a benchmark does not break the gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

type bench struct {
	Name     string  `json:"name"`
	NsOp     float64 `json:"ns_op"`
	AllocsOp float64 `json:"allocs_op"`
	BytesOp  float64 `json:"bytes_op"`
}

type report struct {
	Benchmarks []bench            `json:"benchmarks"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// gate is one parsed -metric flag.
type gate struct {
	name string
	op   string // "=" (relative), "<=" or ">=" (absolute)
	val  float64
}

func parseGate(spec string) (gate, error) {
	for _, op := range []string{"<=", ">=", "="} {
		if i := strings.Index(spec, op); i > 0 {
			v, err := strconv.ParseFloat(spec[i+len(op):], 64)
			if err != nil {
				return gate{}, fmt.Errorf("bad -metric value in %q: %v", spec, err)
			}
			return gate{name: spec[:i], op: op, val: v}, nil
		}
	}
	return gate{}, fmt.Errorf("bad -metric %q: want name=frac, name<=bound, or name>=bound", spec)
}

// benchField selects a gated per-benchmark field; ok is false for
// metrics-map names.
func benchField(b bench, name string) (float64, bool) {
	switch name {
	case "ns_op":
		return b.NsOp, true
	case "allocs_op":
		return b.AllocsOp, true
	case "bytes_op":
		return b.BytesOp, true
	}
	return 0, false
}

func main() {
	threshold := flag.Float64("threshold", 0.15, "maximum tolerated ns/op regression as a fraction (0.15 = +15%)")
	var gates []gate
	flag.Func("metric", "per-metric gate (repeatable): field=frac, name<=bound, or name>=bound", func(spec string) error {
		g, err := parseGate(spec)
		if err != nil {
			return err
		}
		gates = append(gates, g)
		return nil
	})
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: benchdiff [-threshold frac] [-metric spec]... old.json new.json\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}

	oldRep, err := load(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	newRep, err := load(flag.Arg(1))
	if err != nil {
		fatal(err)
	}

	oldBy := make(map[string]bench, len(oldRep.Benchmarks))
	for _, b := range oldRep.Benchmarks {
		oldBy[b.Name] = b
	}

	var failures []string
	fmt.Printf("%-24s %14s %14s %9s %12s\n", "benchmark", "old ns/op", "new ns/op", "delta", "allocs old→new")
	seen := make(map[string]bool, len(newRep.Benchmarks))
	for _, nb := range newRep.Benchmarks {
		seen[nb.Name] = true
		ob, ok := oldBy[nb.Name]
		if !ok {
			fmt.Printf("%-24s %14s %14.0f %9s %12s\n", nb.Name, "-", nb.NsOp, "new", "-")
			continue
		}
		delta := 0.0
		if ob.NsOp > 0 {
			delta = nb.NsOp/ob.NsOp - 1
		}
		mark := ""
		if delta > *threshold {
			mark = "  REGRESSION"
			failures = append(failures, fmt.Sprintf("%s: ns_op %+.1f%% exceeds +%.0f%%", nb.Name, delta*100, *threshold*100))
		}
		fmt.Printf("%-24s %14.0f %14.0f %+8.1f%% %6.0f→%-6.0f%s\n",
			nb.Name, ob.NsOp, nb.NsOp, delta*100, ob.AllocsOp, nb.AllocsOp, mark)
	}
	for _, ob := range oldRep.Benchmarks {
		if !seen[ob.Name] {
			fmt.Printf("%-24s %14.0f %14s %9s %12s\n", ob.Name, ob.NsOp, "-", "gone", "-")
		}
	}

	printMetrics(oldRep.Metrics, newRep.Metrics)

	for _, g := range gates {
		failures = append(failures, applyGate(g, oldRep, newRep, oldBy)...)
	}

	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "benchdiff: FAIL:", f)
		}
		os.Exit(1)
	}
}

// applyGate evaluates one gate against the pair of reports and returns
// the failure messages it produced.
func applyGate(g gate, oldRep, newRep *report, oldBy map[string]bench) []string {
	var fails []string
	if _, isField := benchField(bench{}, g.name); isField {
		// Per-benchmark relative gate over every benchmark in both reports.
		for _, nb := range newRep.Benchmarks {
			ob, ok := oldBy[nb.Name]
			if !ok {
				continue
			}
			o, _ := benchField(ob, g.name)
			n, _ := benchField(nb, g.name)
			if bad, msg := relRegressed(o, n, g.val); bad {
				fails = append(fails, fmt.Sprintf("%s: %s %s", nb.Name, g.name, msg))
			}
		}
		return fails
	}

	n, ok := newRep.Metrics[g.name]
	if !ok {
		return []string{fmt.Sprintf("metric %q gated but absent from new report", g.name)}
	}
	switch g.op {
	case "<=":
		if n > g.val {
			fails = append(fails, fmt.Sprintf("metric %s = %g exceeds bound %g", g.name, n, g.val))
		}
	case ">=":
		if n < g.val {
			fails = append(fails, fmt.Sprintf("metric %s = %g below bound %g", g.name, n, g.val))
		}
	case "=":
		o, ok := oldRep.Metrics[g.name]
		if !ok {
			return []string{fmt.Sprintf("metric %q gated relatively but absent from old report", g.name)}
		}
		if bad, msg := relRegressed(o, n, g.val); bad {
			fails = append(fails, fmt.Sprintf("metric %s %s", g.name, msg))
		}
	}
	return fails
}

// relRegressed reports whether new regressed past old by more than frac.
// A zero baseline tolerates no increase: a fraction of zero is undefined,
// and zero→nonzero (a formerly alloc-free path allocating) is exactly the
// class of regression a relative gate exists to catch.
func relRegressed(o, n, frac float64) (bool, string) {
	if o == 0 {
		if n > 0 {
			return true, fmt.Sprintf("went 0→%g (zero baseline tolerates no increase)", n)
		}
		return false, ""
	}
	if d := n/o - 1; d > frac {
		return true, fmt.Sprintf("%g→%g (%+.1f%% exceeds +%.0f%%)", o, n, d*100, frac*100)
	}
	return false, ""
}

// printMetrics renders the union of both reports' metrics maps, keyed
// alphabetically, so the table is stable across runs.
func printMetrics(oldM, newM map[string]float64) {
	if len(oldM) == 0 && len(newM) == 0 {
		return
	}
	keys := make(map[string]bool, len(oldM)+len(newM))
	for k := range oldM {
		keys[k] = true
	}
	for k := range newM {
		keys[k] = true
	}
	sorted := make([]string, 0, len(keys))
	for k := range keys {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)

	fmt.Printf("\n%-24s %14s %14s\n", "metric", "old", "new")
	for _, k := range sorted {
		fmt.Printf("%-24s %14s %14s\n", k, fmtMetric(oldM, k), fmtMetric(newM, k))
	}
}

func fmtMetric(m map[string]float64, k string) string {
	v, ok := m[k]
	if !ok {
		return "-"
	}
	return strconv.FormatFloat(v, 'g', 6, 64)
}

func load(path string) (*report, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r report
	if err := json.Unmarshal(raw, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(r.Benchmarks) == 0 && len(r.Metrics) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks or metrics in report", path)
	}
	return &r, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(1)
}
