// Command raalserve exposes cost estimation over HTTP behind the full
// robustness stack (internal/serve): bounded admission, per-request
// deadlines, panic isolation, and graceful degradation to the GPSJ
// analytical estimator whenever the deep model fails.
//
// Usage:
//
//	raalserve -model model.raal                       # deep model + GPSJ fallback
//	raalserve                                         # analytical-only serving
//	raalserve -deadline 200ms -on-deadline fail       # 504 instead of fallback
//	raalserve -model model.raal \
//	          -batch-window 2ms -batch-max 16         # micro-batch concurrent requests
//	raalserve -admin :8081 -pprof                     # admin listener + profiling
//
// Endpoints:
//
//	POST /estimate  {"sql": "...", "executors": 2, "cores": 2, "mem_mb": 4096}
//	POST /select    same body; prices candidate plans, returns the argmin
//	GET  /healthz   liveness
//	GET  /readyz    readiness (503 once draining)
//	GET  /metrics   Prometheus text exposition (serving + model telemetry)
//
// The optional -admin listener serves /metrics (and, with -pprof, the
// net/http/pprof handlers under /debug/pprof/) on a separate address so
// operational surfaces can stay off the public port.
//
// SIGINT/SIGTERM starts a graceful shutdown: readiness flips, in-flight
// requests drain, then the listener closes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	netpprof "net/http/pprof"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"raal"
	"raal/internal/physical"
	"raal/internal/serve"
	"raal/internal/sparksim"
	"raal/internal/telemetry"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		adminAddr  = flag.String("admin", "", "admin listen address for /metrics and pprof (empty = no admin listener; /metrics stays on the main port)")
		pprofOn    = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ on the admin listener (requires -admin)")
		logLevel   = flag.String("log-level", "info", "log verbosity: debug, info, warn, or error")
		bench      = flag.String("bench", "imdb", "benchmark: imdb or tpch")
		scale      = flag.Float64("scale", 0.1, "synthetic data scale factor")
		seed       = flag.Int64("seed", 1, "global seed")
		modelPath  = flag.String("model", "", "trained cost model (raaltrain -out); empty serves GPSJ analytical estimates only")
		conc       = flag.Int("concurrency", 0, "max concurrent estimations (0 = GOMAXPROCS)")
		queue      = flag.Int("queue", 64, "admission queue depth beyond the concurrency slots (429 when full)")
		deadline   = flag.Duration("deadline", 500*time.Millisecond, "per-request estimation budget (0 = none)")
		onDeadline = flag.String("on-deadline", "fallback", "deadline-miss policy: fallback (degrade to GPSJ) or fail (504)")
		candidates = flag.Int("max-candidates", 3, "candidate plans priced by /select")
		encCache   = flag.Int("encode-cache", 256, "feature-encoding LRU capacity in plans (0 disables; repeated plans skip re-encoding)")
		batchWin   = flag.Duration("batch-window", 0, "micro-batching collection window; concurrent requests within it coalesce into one forward pass (0 disables batching)")
		batchMax   = flag.Int("batch-max", 0, "micro-batch size cap; a full batch flushes before the window expires (<= 1 disables batching; requires -model)")
		drainGrace = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain budget")
	)
	flag.Parse()

	logger, err := newLogger(*logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "raalserve: %v\n", err)
		os.Exit(1)
	}
	fatal := func(msg string, args ...any) {
		logger.Error(msg, args...)
		os.Exit(1)
	}
	if *pprofOn && *adminAddr == "" {
		fatal("-pprof requires -admin (profiling is only served on the admin listener)")
	}

	policy := serve.FallbackOnDeadline
	switch *onDeadline {
	case "fallback":
	case "fail":
		policy = serve.FailOnDeadline
	default:
		fatal("-on-deadline must be fallback or fail", "got", *onDeadline)
	}

	sys, err := raal.Open(raal.Benchmark(*bench), *scale, *seed)
	if err != nil {
		fatal("opening benchmark", "error", err)
	}
	gpsj := raal.NewGPSJBaseline()

	reg := telemetry.NewRegistry()
	met := serve.NewMetrics(reg)

	cfg := serve.Config{
		Fallback: func(_ context.Context, p *physical.Plan, res sparksim.Resources) (float64, error) {
			return gpsj.Estimate(p, res), nil
		},
		Concurrency: *conc,
		QueueDepth:  *queue,
		Deadline:    *deadline,
		OnDeadline:  policy,
		Metrics:     met,
	}
	if *modelPath != "" {
		f, err := os.Open(*modelPath)
		if err != nil {
			fatal("opening model file", "error", err)
		}
		cm, err := raal.LoadCostModel(f)
		f.Close()
		if err != nil {
			fatal("loading model", "error", err)
		}
		cm.Instrument(reg)
		cm.EnableEncodeCache(*encCache)
		cfg.Deep = func(ctx context.Context, p *physical.Plan, res sparksim.Resources) (float64, error) {
			return cm.EstimateCtx(ctx, p, res)
		}
		cfg.DeepBatch = func(ctx context.Context, plans []*physical.Plan, res sparksim.Resources) ([]float64, error) {
			return cm.EstimateBatchCtx(ctx, plans, res, raal.PredictOpts{})
		}
		if *batchMax > 1 && *batchWin > 0 {
			cfg.BatchWindow = *batchWin
			cfg.BatchMax = *batchMax
			cfg.DeepEach = func(ctx context.Context, items []serve.BatchItem) ([]float64, error) {
				plans := make([]*physical.Plan, len(items))
				res := make([]sparksim.Resources, len(items))
				for i, it := range items {
					plans[i] = it.Plan
					res[i] = it.Res
				}
				return cm.EstimateEachCtx(ctx, plans, res, raal.PredictOpts{})
			}
		}
		logger.Info("serving deep model with GPSJ fallback armed",
			"variant", cm.Variant().Name, "model", *modelPath, "encode_cache", *encCache,
			"batch_window", *batchWin, "batch_max", *batchMax)
	} else {
		if *batchMax > 1 && *batchWin > 0 {
			fatal("-batch-window/-batch-max require -model (the analytical path is not batched)")
		}
		logger.Info("no -model given; serving GPSJ analytical estimates only")
	}

	srv, err := serve.New(cfg)
	if err != nil {
		fatal("building server", "error", err)
	}

	// The planning substrate (parser → binder → planner → cardinality
	// estimator) is not concurrency-hardened, so serialize it; admission
	// control already bounds the expensive estimation stage.
	var planMu sync.Mutex
	handler, err := serve.NewHandler(srv, serve.HTTPConfig{
		Planner: func(sql string) ([]*physical.Plan, error) {
			planMu.Lock()
			defer planMu.Unlock()
			return sys.Plan(sql)
		},
		MaxCandidates: *candidates,
		Metrics:       met,
		Logger:        logger,
	})
	if err != nil {
		fatal("building handler", "error", err)
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
	}
	go func() {
		logger.Info("listening", "addr", *addr, "bench", *bench, "scale", *scale,
			"concurrency", *conc, "queue", *queue,
			"deadline", *deadline, "on_deadline", *onDeadline)
		if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal("listener failed", "error", err)
		}
	}()

	var adminSrv *http.Server
	if *adminAddr != "" {
		adminSrv = &http.Server{
			Addr:              *adminAddr,
			Handler:           adminHandler(reg, *pprofOn),
			ReadHeaderTimeout: 5 * time.Second,
		}
		go func() {
			logger.Info("admin listening", "addr", *adminAddr, "pprof", *pprofOn)
			if err := adminSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fatal("admin listener failed", "error", err)
			}
		}()
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	sig := <-stop
	logger.Info("draining", "signal", sig.String(), "budget", *drainGrace)

	ctx, cancel := context.WithTimeout(context.Background(), *drainGrace)
	defer cancel()
	if err := handler.Shutdown(ctx); err != nil {
		logger.Warn("drain", "error", err)
	}
	if err := httpSrv.Shutdown(ctx); err != nil {
		logger.Warn("http shutdown", "error", err)
	}
	if adminSrv != nil {
		if err := adminSrv.Shutdown(ctx); err != nil {
			logger.Warn("admin shutdown", "error", err)
		}
	}
	logger.Info("stopped")
}

// newLogger builds the process logger at the requested verbosity.
func newLogger(level string) (*slog.Logger, error) {
	var lv slog.Level
	switch level {
	case "debug":
		lv = slog.LevelDebug
	case "info":
		lv = slog.LevelInfo
	case "warn":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("-log-level must be debug, info, warn, or error, got %q", level)
	}
	return slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lv})), nil
}

// adminHandler serves the operational surfaces: /metrics always, the
// pprof handlers only when explicitly enabled (profiles expose internals
// and cost CPU, so they are opt-in rather than ambient).
func adminHandler(reg *telemetry.Registry, pprofOn bool) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("GET /metrics", reg.Handler())
	if pprofOn {
		mux.HandleFunc("/debug/pprof/", netpprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", netpprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", netpprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", netpprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", netpprof.Trace)
	}
	return mux
}
