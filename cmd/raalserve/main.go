// Command raalserve exposes cost estimation over HTTP behind the full
// robustness stack (internal/serve): bounded admission, per-request
// deadlines, panic isolation, and graceful degradation to the GPSJ
// analytical estimator whenever the deep model fails.
//
// Usage:
//
//	raalserve -model model.raal                       # deep model + GPSJ fallback
//	raalserve                                         # analytical-only serving
//	raalserve -deadline 200ms -on-deadline fail       # 504 instead of fallback
//
// Endpoints:
//
//	POST /estimate  {"sql": "...", "executors": 2, "cores": 2, "mem_mb": 4096}
//	POST /select    same body; prices candidate plans, returns the argmin
//	GET  /healthz   liveness
//	GET  /readyz    readiness (503 once draining)
//
// SIGINT/SIGTERM starts a graceful shutdown: readiness flips, in-flight
// requests drain, then the listener closes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"raal"
	"raal/internal/physical"
	"raal/internal/serve"
	"raal/internal/sparksim"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		bench      = flag.String("bench", "imdb", "benchmark: imdb or tpch")
		scale      = flag.Float64("scale", 0.1, "synthetic data scale factor")
		seed       = flag.Int64("seed", 1, "global seed")
		modelPath  = flag.String("model", "", "trained cost model (raaltrain -out); empty serves GPSJ analytical estimates only")
		conc       = flag.Int("concurrency", 0, "max concurrent estimations (0 = GOMAXPROCS)")
		queue      = flag.Int("queue", 64, "admission queue depth beyond the concurrency slots (429 when full)")
		deadline   = flag.Duration("deadline", 500*time.Millisecond, "per-request estimation budget (0 = none)")
		onDeadline = flag.String("on-deadline", "fallback", "deadline-miss policy: fallback (degrade to GPSJ) or fail (504)")
		candidates = flag.Int("max-candidates", 3, "candidate plans priced by /select")
		drainGrace = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain budget")
	)
	flag.Parse()

	policy := serve.FallbackOnDeadline
	switch *onDeadline {
	case "fallback":
	case "fail":
		policy = serve.FailOnDeadline
	default:
		log.Fatalf("raalserve: -on-deadline must be fallback or fail, got %q", *onDeadline)
	}

	sys, err := raal.Open(raal.Benchmark(*bench), *scale, *seed)
	if err != nil {
		log.Fatalf("raalserve: opening benchmark: %v", err)
	}
	gpsj := raal.NewGPSJBaseline()

	cfg := serve.Config{
		Fallback: func(_ context.Context, p *physical.Plan, res sparksim.Resources) (float64, error) {
			return gpsj.Estimate(p, res), nil
		},
		Concurrency: *conc,
		QueueDepth:  *queue,
		Deadline:    *deadline,
		OnDeadline:  policy,
	}
	if *modelPath != "" {
		f, err := os.Open(*modelPath)
		if err != nil {
			log.Fatalf("raalserve: %v", err)
		}
		cm, err := raal.LoadCostModel(f)
		f.Close()
		if err != nil {
			log.Fatalf("raalserve: loading model: %v", err)
		}
		cfg.Deep = func(ctx context.Context, p *physical.Plan, res sparksim.Resources) (float64, error) {
			return cm.EstimateCtx(ctx, p, res)
		}
		cfg.DeepBatch = func(ctx context.Context, plans []*physical.Plan, res sparksim.Resources) ([]float64, error) {
			return cm.EstimateBatchCtx(ctx, plans, res, raal.PredictOpts{})
		}
		log.Printf("raalserve: serving %s model from %s (GPSJ fallback armed)", cm.Variant().Name, *modelPath)
	} else {
		log.Printf("raalserve: no -model given; serving GPSJ analytical estimates only")
	}

	srv, err := serve.New(cfg)
	if err != nil {
		log.Fatalf("raalserve: %v", err)
	}

	// The planning substrate (parser → binder → planner → cardinality
	// estimator) is not concurrency-hardened, so serialize it; admission
	// control already bounds the expensive estimation stage.
	var planMu sync.Mutex
	handler, err := serve.NewHandler(srv, serve.HTTPConfig{
		Planner: func(sql string) ([]*physical.Plan, error) {
			planMu.Lock()
			defer planMu.Unlock()
			return sys.Plan(sql)
		},
		MaxCandidates: *candidates,
	})
	if err != nil {
		log.Fatalf("raalserve: %v", err)
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
	}
	go func() {
		log.Printf("raalserve: listening on %s (%s scale %g, concurrency %d, queue %d, deadline %v, on-deadline %s)",
			*addr, *bench, *scale, *conc, *queue, *deadline, *onDeadline)
		if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("raalserve: %v", err)
		}
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	sig := <-stop
	log.Printf("raalserve: %v — draining (budget %v)", sig, *drainGrace)

	ctx, cancel := context.WithTimeout(context.Background(), *drainGrace)
	defer cancel()
	if err := handler.Shutdown(ctx); err != nil {
		log.Printf("raalserve: drain: %v", err)
	}
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("raalserve: http shutdown: %v", err)
	}
	fmt.Println("raalserve: stopped")
}
