// Command raalserve exposes cost estimation over HTTP behind the full
// robustness stack (internal/serve): bounded admission, per-request
// deadlines, panic isolation, and graceful degradation to the GPSJ
// analytical estimator whenever the deep model fails.
//
// Usage:
//
//	raalserve -model model.raal                       # deep model + GPSJ fallback
//	raalserve                                         # analytical-only serving
//	raalserve -deadline 200ms -on-deadline fail       # 504 instead of fallback
//	raalserve -model model.raal \
//	          -batch-window 2ms -batch-max 16         # micro-batch concurrent requests
//	raalserve -model model.raal -precision int8       # quantized inference behind the
//	                                                  # accuracy gate (f64 on refusal)
//	raalserve -admin :8081 -pprof                     # admin listener + profiling
//	raalserve -route "http://10.0.0.7:8080,http://10.0.0.8:8080"
//	                                                  # fleet router over replicas
//	raalserve -fault-seed 42 -fault-error 0.2         # chaos drill: seeded faults
//
// The same binary runs as a replica (default) or, with -route, as the
// fleet front router (internal/fleet): consistent-hash affinity on the
// canonical plan fingerprint, active health checking, per-replica
// circuit breakers, bounded retries, tail hedging, and degradation to
// the local GPSJ estimate when no replica can answer.
//
// The -fault-* flags arm deterministic fault injection in the replica's
// deep path (serve.FaultConfig) for chaos drills: a fixed -fault-seed
// replays the exact same failure schedule run after run.
//
// Endpoints:
//
//	POST /estimate  {"sql": "...", "executors": 2, "cores": 2, "mem_mb": 4096}
//	POST /select    same body; prices candidate plans, returns the argmin
//	GET  /healthz   liveness
//	GET  /readyz    readiness (503 once draining or saturated)
//	GET  /fleetz    router only: live per-replica health/breaker state
//	GET  /cachez    encode-cache per-key hit attribution (requires -model)
//	GET  /metrics   Prometheus text exposition (serving + model telemetry)
//	GET  /models    online mode: model registry status (champion, shadow, history)
//	POST /models/promote | /models/rollback | /models/pin   registry admin
//
// With -online the replica closes the learning loop: each served deep
// estimate's (plan, resources) is replayed on the cluster simulator, the
// observed time feeds a replay reservoir and a rolling q-error drift
// detector, and a drift trigger retrains a challenger that shadow-scores
// against the champion before an atomic, zero-downtime promotion.
//
// The optional -admin listener serves /metrics (and, with -pprof, the
// net/http/pprof handlers under /debug/pprof/) on a separate address so
// operational surfaces can stay off the public port.
//
// SIGINT/SIGTERM starts a graceful shutdown: readiness flips, in-flight
// requests drain, then the listener closes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	netpprof "net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"raal"
	"raal/internal/fleet"
	"raal/internal/physical"
	"raal/internal/serve"
	"raal/internal/sparksim"
	"raal/internal/telemetry"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		adminAddr  = flag.String("admin", "", "admin listen address for /metrics and pprof (empty = no admin listener; /metrics stays on the main port)")
		pprofOn    = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ on the admin listener (requires -admin)")
		logLevel   = flag.String("log-level", "info", "log verbosity: debug, info, warn, or error")
		bench      = flag.String("bench", "imdb", "benchmark: imdb or tpch")
		scale      = flag.Float64("scale", 0.1, "synthetic data scale factor")
		seed       = flag.Int64("seed", 1, "global seed")
		modelPath  = flag.String("model", "", "trained cost model (raaltrain -out); empty serves GPSJ analytical estimates only")
		conc       = flag.Int("concurrency", 0, "max concurrent estimations (0 = GOMAXPROCS)")
		queue      = flag.Int("queue", 64, "admission queue depth beyond the concurrency slots (429 when full)")
		deadline   = flag.Duration("deadline", 500*time.Millisecond, "per-request estimation budget (0 = none)")
		onDeadline = flag.String("on-deadline", "fallback", "deadline-miss policy: fallback (degrade to GPSJ) or fail (504)")
		candidates = flag.Int("max-candidates", 3, "candidate plans priced by /select")
		encCache   = flag.Int("encode-cache", 256, "feature-encoding LRU capacity in plans (0 disables; repeated plans skip re-encoding)")
		precision  = flag.String("precision", "f64", "serving numeric precision: f64, f32, or int8 (requires -model); reduced precisions quantize the model behind an accuracy gate and serve f64 when the gate refuses")
		quantGate  = flag.Float64("quant-gate", 0.05, "accuracy-gate bound for reduced precisions: maximum p90 q-error delta between quantized and f64 predictions over a sampled gate workload")
		batchWin   = flag.Duration("batch-window", 0, "micro-batching collection window; concurrent requests within it coalesce into one forward pass (0 disables batching)")
		batchMax   = flag.Int("batch-max", 0, "micro-batch size cap; a full batch flushes before the window expires (<= 1 disables batching; requires -model)")
		drainGrace = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain budget")

		online         = flag.Bool("online", false, "close the learning loop: observe simulated execution times for served estimates, detect drift, retrain from a replay buffer, and hot-swap the champion (requires -model)")
		onlineDir      = flag.String("online-dir", "", "online: model snapshot registry directory (empty = keep generations in memory only)")
		replayCap      = flag.Int("replay-cap", 512, "online: replay reservoir capacity in samples")
		driftWindow    = flag.Int("drift-window", 64, "online: sliding window of served q-errors watched by the drift detector")
		driftThreshold = flag.Float64("drift-threshold", 2.0, "online: windowed q-error quantile value that dispatches a retrain")
		minRetrain     = flag.Int("min-retrain", 64, "online: minimum replay occupancy before a drift trigger may retrain")
		shadowMin      = flag.Int("shadow-min", 32, "online: feedback outcomes a challenger is shadow-scored on before the promote/reject verdict")
		retrainEpochs  = flag.Int("retrain-epochs", 10, "online: warm-start training epochs per challenger")

		route      = flag.String("route", "", `run as the fleet router over comma-separated replicas ("[id=]url,..."); all estimation flags except the benchmark ones are ignored`)
		hedgeAfter = flag.Duration("hedge-after", 0, "router: fixed tail-hedging trigger (0 adapts to the observed p99; negative disables hedging)")

		faultSeed     = flag.Int64("fault-seed", 1, "fault injection: seed for the deterministic failure schedule")
		faultPanic    = flag.Float64("fault-panic", 0, "fault injection: per-request probability the deep path panics")
		faultError    = flag.Float64("fault-error", 0, "fault injection: per-request probability the deep path errors")
		faultDelay    = flag.Float64("fault-delay", 0, "fault injection: per-request probability the deep path stalls")
		faultDelayDur = flag.Duration("fault-delay-dur", 50*time.Millisecond, "fault injection: stall duration for injected delays")
	)
	flag.Parse()

	logger, err := newLogger(*logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "raalserve: %v\n", err)
		os.Exit(1)
	}
	fatal := func(msg string, args ...any) {
		logger.Error(msg, args...)
		os.Exit(1)
	}
	if *pprofOn && *adminAddr == "" {
		fatal("-pprof requires -admin (profiling is only served on the admin listener)")
	}

	if *route != "" {
		runRouter(logger, fatal, routerOpts{
			spec:       *route,
			addr:       *addr,
			bench:      *bench,
			scale:      *scale,
			seed:       *seed,
			candidates: *candidates,
			hedgeAfter: *hedgeAfter,
			drainGrace: *drainGrace,
		})
		return
	}

	policy := serve.FallbackOnDeadline
	switch *onDeadline {
	case "fallback":
	case "fail":
		policy = serve.FailOnDeadline
	default:
		fatal("-on-deadline must be fallback or fail", "got", *onDeadline)
	}

	sys, err := raal.Open(raal.Benchmark(*bench), *scale, *seed)
	if err != nil {
		fatal("opening benchmark", "error", err)
	}
	gpsj := raal.NewGPSJBaseline()

	reg := telemetry.NewRegistry()
	met := serve.NewMetrics(reg)

	cfg := serve.Config{
		Fallback: func(_ context.Context, p *physical.Plan, res sparksim.Resources) (float64, error) {
			return gpsj.Estimate(p, res), nil
		},
		Concurrency: *conc,
		QueueDepth:  *queue,
		Deadline:    *deadline,
		OnDeadline:  policy,
		Metrics:     met,
	}
	if *faultPanic > 0 || *faultError > 0 || *faultDelay > 0 {
		cfg.Faults = &serve.FaultConfig{
			Seed:      *faultSeed,
			PanicProb: *faultPanic,
			ErrorProb: *faultError,
			DelayProb: *faultDelay,
			Delay:     *faultDelayDur,
		}
		logger.Warn("fault injection armed — this replica will deliberately fail",
			"seed", *faultSeed, "panic_prob", *faultPanic, "error_prob", *faultError,
			"delay_prob", *faultDelay, "delay", *faultDelayDur)
	}
	var (
		cacheStats func() []serve.CacheKeyStats
		modelAdmin http.Handler
	)
	prec, err := raal.ParsePrecision(*precision)
	if err != nil {
		fatal("parsing -precision", "error", err)
	}
	if *modelPath == "" && prec != raal.PrecisionF64 {
		fatal("-precision requires -model (the analytical path has no quantized form)")
	}
	if *modelPath != "" {
		cm, st, err := loadModelOrCheckpoint(*modelPath)
		if err != nil {
			fatal("loading model", "error", err)
		}
		cm.Instrument(reg)
		cm.EnableEncodeCache(*encCache)
		if *encCache > 0 {
			cacheStats = func() []serve.CacheKeyStats {
				stats := cm.EncodeCacheKeyStats()
				out := make([]serve.CacheKeyStats, len(stats))
				for i, s := range stats {
					out[i] = serve.CacheKeyStats{Key: s.Key, Precision: s.Precision, Hits: s.Hits}
				}
				return out
			}
		}
		// The accuracy gate scores the quantized snapshot against the f64
		// reference on a sampled benchmark workload; collect it once at
		// startup (it also seeds the online loop's bootstrap gate).
		var gate []*raal.Sample
		servingPrec := func() string { return cm.Precision().String() }
		if prec != raal.PrecisionF64 {
			if gate, err = quantGateSamples(sys, cm, *seed); err != nil {
				fatal("collecting quantization gate workload", "error", err)
			}
			if !*online {
				if err := cm.EnablePrecision(prec, gate, *quantGate); err != nil {
					logger.Warn("quantization gate refused; serving f64",
						"precision", prec.String(), "error", err)
				}
			}
		}
		if *online {
			osrv, err := raal.NewOnlineServing(cm, st, raal.OnlineOptions{
				Dir:            *onlineDir,
				ReplayCap:      *replayCap,
				DriftWindow:    *driftWindow,
				DriftThreshold: *driftThreshold,
				MinRetrain:     *minRetrain,
				ShadowMin:      *shadowMin,
				RetrainEpochs:  *retrainEpochs,
				Seed:           *seed,
				Precision:      prec,
				GateSamples:    gate,
				MaxQDelta:      *quantGate,
				Metrics:        reg,
				Logger:         logger,
			})
			if err != nil {
				fatal("starting online learning", "error", err)
			}
			modelAdmin = osrv.AdminHandler()
			servingPrec = func() string { return osrv.Precision().String() }
			// Feedback loop: every deep answer's (plan, resources) is
			// re-executed on the cluster simulator — the substrate's ground
			// truth — and the observed time flows back into the learning
			// loop. One worker serializes both the simulator and the
			// manager; a full queue drops feedback rather than stalling
			// serving (learning is best-effort, answering is not).
			type outcome struct {
				plan *physical.Plan
				res  sparksim.Resources
				pred float64
			}
			feedback := make(chan outcome, 1024)
			go func() {
				for o := range feedback {
					actual, err := sys.Cost(o.plan, o.res)
					if err != nil {
						continue
					}
					osrv.Feedback(o.plan, o.res, o.pred, actual)
				}
			}()
			observe := func(p *physical.Plan, res sparksim.Resources, pred float64) {
				select {
				case feedback <- outcome{plan: p, res: res, pred: pred}:
				default: // shed feedback under pressure, never block serving
				}
			}
			cfg.Deep = func(ctx context.Context, p *physical.Plan, res sparksim.Resources) (float64, error) {
				c, err := osrv.EstimateCtx(ctx, p, res)
				if err == nil {
					observe(p, res, c)
				}
				return c, err
			}
			cfg.DeepBatch = func(ctx context.Context, plans []*physical.Plan, res sparksim.Resources) ([]float64, error) {
				return osrv.EstimateBatchCtx(ctx, plans, res, raal.PredictOpts{})
			}
			if *batchMax > 1 && *batchWin > 0 {
				cfg.BatchWindow = *batchWin
				cfg.BatchMax = *batchMax
				cfg.DeepEach = func(ctx context.Context, items []serve.BatchItem) ([]float64, error) {
					plans := make([]*physical.Plan, len(items))
					res := make([]sparksim.Resources, len(items))
					for i, it := range items {
						plans[i] = it.Plan
						res[i] = it.Res
					}
					preds, err := osrv.EstimateEachCtx(ctx, plans, res, raal.PredictOpts{})
					if err == nil {
						for i := range preds {
							observe(plans[i], res[i], preds[i])
						}
					}
					return preds, err
				}
			}
			logger.Info("online learning armed",
				"variant", cm.Variant().Name, "model", *modelPath,
				"registry", *onlineDir, "replay_cap", *replayCap,
				"drift_window", *driftWindow, "drift_threshold", *driftThreshold,
				"champion", osrv.ChampionVersion(), "precision", osrv.Precision().String())
		} else {
			cfg.Deep = func(ctx context.Context, p *physical.Plan, res sparksim.Resources) (float64, error) {
				return cm.EstimateCtx(ctx, p, res)
			}
			cfg.DeepBatch = func(ctx context.Context, plans []*physical.Plan, res sparksim.Resources) ([]float64, error) {
				return cm.EstimateBatchCtx(ctx, plans, res, raal.PredictOpts{})
			}
			if *batchMax > 1 && *batchWin > 0 {
				cfg.BatchWindow = *batchWin
				cfg.BatchMax = *batchMax
				cfg.DeepEach = func(ctx context.Context, items []serve.BatchItem) ([]float64, error) {
					plans := make([]*physical.Plan, len(items))
					res := make([]sparksim.Resources, len(items))
					for i, it := range items {
						plans[i] = it.Plan
						res[i] = it.Res
					}
					return cm.EstimateEachCtx(ctx, plans, res, raal.PredictOpts{})
				}
			}
		}
		logger.Info("serving deep model with GPSJ fallback armed",
			"variant", cm.Variant().Name, "model", *modelPath, "encode_cache", *encCache,
			"batch_window", *batchWin, "batch_max", *batchMax, "precision", servingPrec())
	} else {
		if *batchMax > 1 && *batchWin > 0 {
			fatal("-batch-window/-batch-max require -model (the analytical path is not batched)")
		}
		if *online {
			fatal("-online requires -model (there is no deep model to keep fresh)")
		}
		logger.Info("no -model given; serving GPSJ analytical estimates only")
	}

	srv, err := serve.New(cfg)
	if err != nil {
		fatal("building server", "error", err)
	}

	// The planning substrate (parser → binder → planner → cardinality
	// estimator) is not concurrency-hardened, so serialize it; admission
	// control already bounds the expensive estimation stage.
	var planMu sync.Mutex
	handler, err := serve.NewHandler(srv, serve.HTTPConfig{
		Planner: func(sql string) ([]*physical.Plan, error) {
			planMu.Lock()
			defer planMu.Unlock()
			return sys.Plan(sql)
		},
		MaxCandidates: *candidates,
		Metrics:       met,
		Logger:        logger,
		CacheStats:    cacheStats,
		ModelAdmin:    modelAdmin,
	})
	if err != nil {
		fatal("building handler", "error", err)
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
	}
	go func() {
		logger.Info("listening", "addr", *addr, "bench", *bench, "scale", *scale,
			"concurrency", *conc, "queue", *queue,
			"deadline", *deadline, "on_deadline", *onDeadline)
		if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal("listener failed", "error", err)
		}
	}()

	var adminSrv *http.Server
	if *adminAddr != "" {
		adminSrv = &http.Server{
			Addr:              *adminAddr,
			Handler:           adminHandler(reg, *pprofOn, modelAdmin),
			ReadHeaderTimeout: 5 * time.Second,
		}
		go func() {
			logger.Info("admin listening", "addr", *adminAddr, "pprof", *pprofOn)
			if err := adminSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fatal("admin listener failed", "error", err)
			}
		}()
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	sig := <-stop
	logger.Info("draining", "signal", sig.String(), "budget", *drainGrace)

	ctx, cancel := context.WithTimeout(context.Background(), *drainGrace)
	defer cancel()
	if err := handler.Shutdown(ctx); err != nil {
		logger.Warn("drain", "error", err)
	}
	if err := httpSrv.Shutdown(ctx); err != nil {
		logger.Warn("http shutdown", "error", err)
	}
	if adminSrv != nil {
		if err := adminSrv.Shutdown(ctx); err != nil {
			logger.Warn("admin shutdown", "error", err)
		}
	}
	logger.Info("stopped")
}

// routerOpts carries the flag subset the router mode consumes.
type routerOpts struct {
	spec       string
	addr       string
	bench      string
	scale      float64
	seed       int64
	candidates int
	hedgeAfter time.Duration
	drainGrace time.Duration
}

// runRouter is the -route mode: the same binary as the fleet front
// router. It plans locally (to compute the affinity fingerprint and to
// price the degrade path) but delegates all deep estimation to the
// replicas.
func runRouter(logger *slog.Logger, fatal func(string, ...any), opts routerOpts) {
	replicas, err := parseReplicas(opts.spec)
	if err != nil {
		fatal("parsing -route", "error", err)
	}
	sys, err := raal.Open(raal.Benchmark(opts.bench), opts.scale, opts.seed)
	if err != nil {
		fatal("opening benchmark", "error", err)
	}
	gpsj := raal.NewGPSJBaseline()

	reg := telemetry.NewRegistry()
	ids := make([]string, len(replicas))
	for i, r := range replicas {
		ids[i] = r.ID
	}
	met := fleet.NewMetrics(reg, ids)

	var planMu sync.Mutex
	router, err := fleet.New(fleet.Config{
		Replicas: replicas,
		Planner: func(sql string) ([]*physical.Plan, error) {
			planMu.Lock()
			defer planMu.Unlock()
			return sys.Plan(sql)
		},
		// The encode cache's exact key: router affinity and replica
		// cache locality agree byte-for-byte.
		Fingerprint: raal.PlanFingerprint,
		Fallback: func(_ context.Context, p *physical.Plan, res sparksim.Resources) (float64, error) {
			return gpsj.Estimate(p, res), nil
		},
		MaxCandidates: opts.candidates,
		HedgeAfter:    opts.hedgeAfter,
		Seed:          opts.seed,
		Metrics:       met,
		Logger:        logger,
	})
	if err != nil {
		fatal("building router", "error", err)
	}

	httpSrv := &http.Server{
		Addr:              opts.addr,
		Handler:           router,
		ReadHeaderTimeout: 5 * time.Second,
	}
	go func() {
		logger.Info("routing", "addr", opts.addr, "replicas", len(replicas),
			"hedge_after", opts.hedgeAfter)
		if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal("listener failed", "error", err)
		}
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	sig := <-stop
	logger.Info("router stopping", "signal", sig.String())

	ctx, cancel := context.WithTimeout(context.Background(), opts.drainGrace)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		logger.Warn("http shutdown", "error", err)
	}
	router.Close()
	logger.Info("stopped")
}

// parseReplicas parses the -route spec: comma-separated entries, each
// "id=url" or a bare url (IDs default to r0, r1, ...).
func parseReplicas(spec string) ([]fleet.Replica, error) {
	var out []fleet.Replica
	for i, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		id, url := fmt.Sprintf("r%d", i), entry
		if eq := strings.Index(entry, "="); eq > 0 && !strings.Contains(entry[:eq], "/") {
			id, url = entry[:eq], entry[eq+1:]
		}
		if !strings.Contains(url, "://") {
			url = "http://" + url
		}
		out = append(out, fleet.Replica{ID: id, URL: strings.TrimSuffix(url, "/")})
	}
	if len(out) == 0 {
		return nil, errors.New("-route needs at least one replica url")
	}
	return out, nil
}

// newLogger builds the process logger at the requested verbosity.
func newLogger(level string) (*slog.Logger, error) {
	var lv slog.Level
	switch level {
	case "debug":
		lv = slog.LevelDebug
	case "info":
		lv = slog.LevelInfo
	case "warn":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("-log-level must be debug, info, warn, or error, got %q", level)
	}
	return slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lv})), nil
}

// loadModelOrCheckpoint opens path as either a resumable checkpoint
// (raaltrain -checkpoint) or a bare model file (raaltrain -out). A
// checkpoint additionally yields the optimizer/shuffle state, which lets
// -online warm-start challengers exactly where training left off; a bare
// model starts online training state from scratch.
func loadModelOrCheckpoint(path string) (*raal.CostModel, *raal.TrainState, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	if cm, st, err := raal.LoadCheckpoint(f); err == nil {
		return cm, st, nil
	}
	if _, err := f.Seek(0, 0); err != nil {
		return nil, nil, err
	}
	cm, err := raal.LoadCostModel(f)
	return cm, nil, err
}

// quantGateSamples collects a small benchmark workload and encodes it
// with the model's fitted encoder: the reference set the quantization
// accuracy gate scores both precisions on (f64 predictions as reference,
// no labels needed — see raal.CostModel.EnablePrecision).
func quantGateSamples(sys *raal.System, cm *raal.CostModel, seed int64) ([]*raal.Sample, error) {
	ds, err := sys.Collect(raal.CollectOptions{NumQueries: 24, ResStatesPerPlan: 2, Seed: seed})
	if err != nil {
		return nil, err
	}
	return cm.EncodeDataset(ds), nil
}

// adminHandler serves the operational surfaces: /metrics always, the
// pprof handlers only when explicitly enabled (profiles expose internals
// and cost CPU, so they are opt-in rather than ambient), and the model
// registry admin surface when online learning is armed.
func adminHandler(reg *telemetry.Registry, pprofOn bool, modelAdmin http.Handler) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("GET /metrics", reg.Handler())
	if modelAdmin != nil {
		mux.Handle("/models", modelAdmin)
		mux.Handle("/models/", modelAdmin)
	}
	if pprofOn {
		mux.HandleFunc("/debug/pprof/", netpprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", netpprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", netpprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", netpprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", netpprof.Trace)
	}
	return mux
}
