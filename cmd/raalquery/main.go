// Command raalquery plans, executes, and prices a single SQL query on a
// synthetic benchmark with a simulated cluster — the quickest way to see
// the substrate end to end.
//
// Usage:
//
//	raalquery -sql "SELECT COUNT(*) FROM movie_keyword mk WHERE mk.keyword_id < 500"
//	raalquery -bench tpch -executors 4 -mem 8192 -sql "SELECT COUNT(*) FROM lineitem"
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"raal"
)

func main() {
	var (
		bench     = flag.String("bench", "imdb", "benchmark: imdb or tpch")
		scale     = flag.Float64("scale", 0.1, "synthetic data scale factor")
		query     = flag.String("sql", "", "SQL query (required)")
		executors = flag.Int("executors", 2, "executors")
		cores     = flag.Int("cores", 2, "cores per executor")
		memMB     = flag.Float64("mem", 4096, "executor memory (MB)")
		seed      = flag.Int64("seed", 1, "global seed")
		modelPath = flag.String("model", "", "trained cost model (from raaltrain -out) for plan selection")
		precision = flag.String("precision", "f64", "with -model, inference precision: f64, f32, or int8 (reduced precisions quantize the loaded model)")
		explain   = flag.Bool("explain", false, "print the per-stage cost breakdown of each plan")
		trace     = flag.Bool("trace", false, "with -model, print the model's per-stage inference timing for the picked plan")
		dotPath   = flag.String("dot", "", "write the cheapest plan as Graphviz DOT to this file")
	)
	flag.Parse()
	if *query == "" {
		fmt.Fprintln(os.Stderr, "missing -sql")
		flag.Usage()
		os.Exit(1)
	}

	sys, err := raal.Open(raal.Benchmark(*bench), *scale, *seed)
	if err != nil {
		fatal(err)
	}
	res := raal.DefaultResources()
	res.Executors = *executors
	res.ExecCores = *cores
	res.ExecMemMB = *memMB

	plans, err := sys.Plan(*query)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%d candidate plan(s); resources: %s\n\n", len(plans), res)

	type priced struct {
		idx int
		sec float64
	}
	var ranking []priced
	for i, p := range plans {
		if _, err := sys.Execute(p); err != nil {
			fatal(err)
		}
		sec, err := sys.Cost(p, res)
		if err != nil {
			fatal(err)
		}
		ranking = append(ranking, priced{i, sec})
		fmt.Printf("--- plan %d [%s]: %.2fs ---\n%s\n", i+1, p.Sig, sec, p)
		if *explain {
			b, err := sys.CostBreakdown(p, res)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("%-40s %6s %6s %9s %9s %9s %9s\n", "stage", "tasks", "waves", "cpu", "disk", "net", "total")
			for _, st := range b.Stages {
				fmt.Printf("%-40.40s %6d %6d %8.2fs %8.2fs %8.2fs %8.2fs\n",
					st.Label, st.Tasks, st.Waves, st.CPUSec, st.DiskSec, st.NetSec, st.Sec)
			}
			fmt.Println()
		}
	}
	sort.Slice(ranking, func(a, b int) bool { return ranking[a].sec < ranking[b].sec })
	fmt.Printf("cheapest (simulated truth): plan %d (%.2fs)\n", ranking[0].idx+1, ranking[0].sec)

	if *modelPath != "" {
		f, err := os.Open(*modelPath)
		if err != nil {
			fatal(err)
		}
		cm, err := raal.LoadCostModel(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		prec, err := raal.ParsePrecision(*precision)
		if err != nil {
			fatal(err)
		}
		// Ungated interactive install: raalquery is a debugging tool, so
		// the pick is quantized without the serving layer's accuracy gate.
		if err := cm.EnablePrecision(prec, nil, 0); err != nil {
			fatal(err)
		}
		best, pred := cm.SelectPlan(plans, res)
		for i, p := range plans {
			if p == best {
				fmt.Printf("%s model picks:  plan %d (predicted %.2fs)\n", cm.Variant().Name, i+1, pred)
			}
		}
		if *trace {
			_, sp := cm.EstimateTraced(best, res)
			fmt.Printf("inference breakdown [%s] (%v total):\n", cm.Precision(), sp.Total())
			for _, st := range sp.Stages() {
				fmt.Printf("  %-10s %v\n", st.Name, st.Dur)
			}
		}
	}

	if *dotPath != "" {
		if err := os.WriteFile(*dotPath, []byte(plans[ranking[0].idx].DOT()), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("cheapest plan written to %s (render with: dot -Tsvg)\n", *dotPath)
	}

	rel, err := sys.Execute(plans[ranking[0].idx])
	if err != nil {
		fatal(err)
	}
	fmt.Printf("result: %d row(s), columns %v\n", rel.N, rel.ColNames())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
