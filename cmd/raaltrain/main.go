// Command raaltrain collects a training corpus from a synthetic benchmark
// and trains a RAAL cost model, optionally saving it to disk.
//
// Usage:
//
//	raaltrain -bench imdb -queries 300 -epochs 30 -out model.raal
//	raaltrain -variant NE-LSTM -queries 100 -epochs 10
//	raaltrain -epochs 10 -checkpoint ck.raal             # stop early, keep state
//	raaltrain -resume ck.raal -epochs 10 -out model.raal # continue bit-exactly
//
// -checkpoint saves a resumable checkpoint (model + optimizer state +
// shuffle position) after training; -resume warm-starts from one and
// continues with the same seeds, reproducing the uninterrupted longer
// run bit for bit.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"raal"
)

func main() {
	var (
		bench      = flag.String("bench", "imdb", "benchmark: imdb or tpch")
		scale      = flag.Float64("scale", 0.1, "synthetic data scale factor")
		queries    = flag.Int("queries", 250, "generated queries")
		states     = flag.Int("states", 3, "resource states per plan")
		epochs     = flag.Int("epochs", 30, "training epochs")
		lr         = flag.Float64("lr", 3e-3, "learning rate")
		variant    = flag.String("variant", "RAAL", "RAAL, NE-LSTM, NA-LSTM, or RAAC")
		seed       = flag.Int64("seed", 1, "global seed")
		out        = flag.String("out", "", "path to save the trained model (optional)")
		workers    = flag.Int("workers", 0, "training worker goroutines (0 = serial; results are identical for any value)")
		shard      = flag.Int("shard", 0, "gradient-accumulation shard size (0 = whole batch)")
		resume     = flag.String("resume", "", "continue training from a checkpoint written by -checkpoint")
		checkpoint = flag.String("checkpoint", "", "path to save a resumable checkpoint after training (optional)")
	)
	flag.Parse()

	var v raal.Variant
	switch *variant {
	case "RAAL":
		v = raal.RAAL()
	case "NE-LSTM":
		v = raal.NELSTM()
	case "NA-LSTM":
		v = raal.NALSTM()
	case "RAAC":
		v = raal.RAAC()
	default:
		fmt.Fprintf(os.Stderr, "unknown variant %q\n", *variant)
		os.Exit(1)
	}

	sys, err := raal.Open(raal.Benchmark(*bench), *scale, *seed)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("opened %s: %d rows across %d tables\n", *bench, sys.TotalRows(), len(sys.Tables()))

	start := time.Now()
	ds, err := sys.Collect(raal.CollectOptions{
		NumQueries: *queries, ResStatesPerPlan: *states, Seed: *seed,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("collected %d records (%d plans, %d queries skipped) in %v\n",
		len(ds.Records), len(ds.Plans), ds.Skipped, time.Since(start).Round(time.Millisecond))

	start = time.Now()
	// Progress lines read from the metrics registry rather than the raw
	// callback arguments — the same counters and gauges a /metrics scrape
	// would see, so the printed numbers are the telemetry, not a parallel
	// bookkeeping path.
	reg := raal.NewMetricsRegistry()
	epochs64 := reg.NewCounter("raal_train_epochs_total", "Completed training epochs.")
	loss64 := reg.NewGauge("raal_train_epoch_loss", "Latest epoch's sample-weighted mean training loss (log-cost MSE).")
	shards64 := reg.NewGauge("raal_train_shards_per_sec", "Latest epoch's gradient-shard throughput.")
	opts := raal.TrainOptions{
		Epochs: *epochs, LR: *lr, Seed: *seed,
		Workers: *workers, ShardSize: *shard,
		Metrics: reg,
		Progress: func(int, float64) {
			fmt.Printf("  epoch %2d: loss %.4f (%.0f shards/s)\n",
				epochs64.Value(), loss64.Value(), shards64.Value())
		},
	}

	var (
		cm     *raal.CostModel
		report *raal.TrainReport
	)
	if *resume != "" {
		f, err := os.Open(*resume)
		if err != nil {
			fatal(err)
		}
		var st *raal.TrainState
		cm, st, err = raal.LoadCheckpoint(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		if *variant != "RAAL" && cm.Variant().Name != v.Name {
			fatal(fmt.Errorf("checkpoint %s holds a %s model but -variant asked for %s — a checkpoint can only continue the architecture it was trained with",
				*resume, cm.Variant().Name, v.Name))
		}
		v = cm.Variant()
		fmt.Printf("resuming %s from %s (%d epochs already trained)\n", v.Name, *resume, st.Epochs)
		report, err = raal.ResumeCostModel(cm, st, ds, opts)
		if err != nil {
			fatal(err)
		}
	} else {
		cm, report, err = raal.TrainCostModel(ds, v, opts)
		if err != nil {
			fatal(err)
		}
	}
	fmt.Printf("trained %s on %d samples in %v\n", v.Name, report.TrainSamples, time.Since(start).Round(time.Millisecond))
	fmt.Printf("held-out (%d samples): %s\n", report.TestSamples, report.Held)

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := cm.Save(f); err != nil {
			fatal(err)
		}
		fmt.Printf("model saved to %s\n", *out)
	}
	if *checkpoint != "" {
		f, err := os.Create(*checkpoint)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := raal.SaveCheckpoint(f, cm, report.State); err != nil {
			fatal(err)
		}
		fmt.Printf("checkpoint saved to %s (resume with -resume %s)\n", *checkpoint, *checkpoint)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
