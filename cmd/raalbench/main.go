// Command raalbench regenerates the paper's tables and figures on the
// simulated substrate.
//
// Usage:
//
//	raalbench -list
//	raalbench -exp table4
//	raalbench -exp all -bench imdb -queries 250 -epochs 30
//	raalbench -exp table7 -quick
//
// Experiments that train models share one prepared lab per invocation, so
// running -exp all reuses the collected corpus.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"raal/internal/experiments"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list available experiments and exit")
		exp     = flag.String("exp", "all", "experiment name (see -list) or 'all'")
		bench   = flag.String("bench", "imdb", "benchmark: imdb or tpch")
		scale   = flag.Float64("scale", 0, "synthetic data scale factor (0 = default)")
		queries = flag.Int("queries", 0, "generated queries for the corpus (0 = default)")
		states  = flag.Int("states", 0, "resource states per plan (0 = default)")
		epochs  = flag.Int("epochs", 0, "training epochs (0 = default)")
		seed    = flag.Int64("seed", 1, "global seed")
		quick   = flag.Bool("quick", false, "small settings for a fast smoke run")
		csvDir  = flag.String("csv", "", "directory to write per-experiment CSV data (figures only)")
		jsonOut = flag.Bool("json", false, "also write machine-readable BENCH_<exp>.json to -outdir for experiments that support it (see cmd/benchdiff)")
		outDir  = flag.String("outdir", "results", "directory for the bench report file, mirrored to stdout (empty = stdout only)")
		workers = flag.Int("workers", 0, "training worker goroutines (0 = serial; results are identical for any value)")
		shard   = flag.Int("shard", 0, "gradient-accumulation shard size (0 = whole batch)")
	)
	flag.Parse()

	if *list {
		for _, r := range experiments.Registry() {
			fmt.Printf("  %-8s %s\n", r.Name, r.Description)
		}
		return
	}

	// The report goes to stdout and, by default, to
	// results/bench_results_<exp>.txt (or bench_results_<bench>.txt for a
	// full run), so experiment output lands in the tracked results tree
	// instead of littering the repo root.
	var out io.Writer = os.Stdout
	if *outDir != "" {
		name := *exp
		if name == "all" {
			name = *bench
		}
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		path := filepath.Join(*outDir, "bench_results_"+name+".txt")
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		out = io.MultiWriter(os.Stdout, f)
		fmt.Printf("writing report to %s\n", path)
	}

	opt := experiments.DefaultOptions()
	if *quick {
		opt = experiments.QuickOptions()
	}
	opt.Bench = *bench
	if *scale > 0 {
		opt.Scale = *scale
	}
	if *queries > 0 {
		opt.NumQueries = *queries
	}
	if *states > 0 {
		opt.ResStates = *states
	}
	if *epochs > 0 {
		opt.Epochs = *epochs
	}
	opt.Seed = *seed
	opt.Workers = *workers
	opt.ShardSize = *shard

	runners := experiments.Registry()
	if *exp != "all" {
		r, err := experiments.Lookup(*exp)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		runners = []experiments.Runner{r}
	}

	var lab *experiments.Lab
	needsLab := false
	for _, r := range runners {
		if r.NeedsLab {
			needsLab = true
		}
	}
	if needsLab {
		fmt.Fprintf(out, "preparing lab: bench=%s scale=%.2f queries=%d states=%d ...\n",
			opt.Bench, opt.Scale, opt.NumQueries, opt.ResStates)
		start := time.Now()
		var err error
		lab, err = experiments.NewLab(opt)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(out, "lab ready in %v: %d train / %d test samples\n\n",
			time.Since(start).Round(time.Millisecond), len(lab.TrainSamples), len(lab.TestSamples))
	}

	for _, r := range runners {
		start := time.Now()
		var rep experiments.Report
		var err error
		if r.NeedsLab {
			rep, err = r.RunLab(lab)
		} else {
			rep, err = r.Run(opt)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", r.Name, err)
			os.Exit(1)
		}
		fmt.Fprintf(out, "=== %s (%s) — %v ===\n", r.Name, r.Description, time.Since(start).Round(time.Millisecond))
		rep.Print(out)
		fmt.Fprintln(out)

		if *csvDir != "" {
			if c, ok := rep.(experiments.CSVer); ok {
				if err := writeCSV(*csvDir, r.Name, c); err != nil {
					fmt.Fprintf(os.Stderr, "csv %s: %v\n", r.Name, err)
					os.Exit(1)
				}
			}
		}
		if *jsonOut {
			if j, ok := rep.(experiments.JSONer); ok {
				dir := *outDir
				if dir == "" {
					dir = "."
				}
				path, err := writeJSON(dir, r.Name, j)
				if err != nil {
					fmt.Fprintf(os.Stderr, "json %s: %v\n", r.Name, err)
					os.Exit(1)
				}
				fmt.Printf("wrote %s\n", path)
			}
		}
	}
}

func writeJSON(dir, name string, j experiments.JSONer) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, "BENCH_"+name+".json")
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	return path, j.JSON(f)
}

func writeCSV(dir, name string, c experiments.CSVer) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(dir + "/" + name + ".csv")
	if err != nil {
		return err
	}
	defer f.Close()
	return c.CSV(f)
}
