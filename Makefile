# Developer entry points. The repo is pure Go with no dependencies, so
# every target is just a go-tool invocation.

GO ?= go

.PHONY: build test race bench bench-parallel benchjson bench-serve bench-fleet bench-online chaos online quant bench-quant engine bench-engine vet fuzz cover check

build:
	$(GO) build ./...

# Tier-1 verification: everything must build and pass. Tests run in a
# shuffled order so hidden inter-test dependencies (shared globals,
# leaked goroutines, order-coupled fixtures) surface in CI instead of
# in a refactor.
test: build
	$(GO) test -shuffle=on ./...

# Race-detector run over the packages with concurrency on the hot path
# (data-parallel training/inference, the serving layer, the telemetry
# registry, and the numeric stack), plus the public API. internal/core
# includes TestParallelTrainRaceSmoke, which trains with Workers=4 so
# shard-parallel backward passes are exercised under the detector;
# internal/serve includes TestConcurrentRequestsRaceClean and
# TestBatcherRaceStress (mixed-deadline clients hammering the
# micro-batch coalescer through a concurrent Close);
# internal/telemetry includes concurrent writer/scraper tests;
# internal/fleet includes the chaos suite (hedged requests racing
# drains and kills) and internal/backoff the context-cancellation
# property tests; internal/engine includes TestConcurrentStreamingRuns
# (one Engine, shared slab pools and counters, hammered from 8
# goroutines) and internal/workload the worker-count-invariant parallel
# collection tests. Use `make race-all` for the (slow) full sweep.
race:
	$(GO) test -race ./internal/core ./internal/nn ./internal/autodiff ./internal/tensor ./internal/serve ./internal/telemetry ./internal/fleet ./internal/backoff ./internal/online ./internal/engine ./internal/workload .

# The experiments package replays full training runs; under the race
# detector that exceeds go test's default 10m per-package timeout on
# small machines, hence the explicit budget.
.PHONY: race-all
race-all:
	$(GO) test -race -timeout 60m ./...

# Paper tables/figures as benchmarks (see bench_test.go).
bench:
	$(GO) test -bench=. -benchmem .

# Data-parallel speedup curves: Predict/Fit by worker count.
bench-parallel:
	$(GO) test ./internal/core -run=XXX -bench 'BenchmarkPredict|BenchmarkFit' -benchmem

# Machine-readable hot-path numbers (results/BENCH_micro.json); compare
# runs with: go run ./cmd/benchdiff results/BENCH_micro.json new.json
benchjson:
	$(GO) run ./cmd/raalbench -exp micro -json -outdir results

# End-to-end serving throughput, micro-batching off vs on per client
# count (results/BENCH_serve.json).
bench-serve:
	$(GO) run ./cmd/raalbench -exp serve -json -outdir results

# Fleet router scaling 1→N replicas plus kill-mid-run availability
# (results/BENCH_fleet.json).
bench-fleet:
	$(GO) run ./cmd/raalbench -exp fleet -json -outdir results

# Chaos drills: the fault-injected fleet suite (seeded FaultConfig
# replicas, mid-run kills, drain-during-hedge) under the race detector.
# Deterministic — a failure here is a real robustness bug, not flake.
chaos:
	$(GO) test -race -run 'TestChaos' -count=1 -v ./internal/fleet

# Online-learning drills under the race detector: the seeded workload
# shift (drift detector → replay-buffer retrain → shadow comparison →
# promotion), the hot-swap soak (concurrent requests racing 48
# promote/rollback swaps, zero torn reads allowed), and the admin
# surface. Deterministic end to end — the loop inherits Fit's
# bit-reproducibility.
online:
	$(GO) test -race -run 'TestOnline' -count=1 -v ./internal/online

# The seeded drift drill as a report (results/BENCH_online.json):
# pre-shift vs drift-peak vs post-promotion q-error.
bench-online:
	$(GO) run ./cmd/raalbench -exp online -json -outdir results

# Quantized-path gate: the accuracy-gate and precision tests (typed
# refusal + f64 fallback, bit-reproducible quantized predict, precision-
# tagged cache isolation, requantize-on-promotion), then the committed
# quant report checked against the paper-level bounds — the 0.9-quantile
# q-error delta must stay ≤ 0.05 for both reduced precisions. Diffing
# the report against itself makes the delta columns no-ops; the absolute
# -metric bounds are the point: a bad baseline cannot be committed.
quant:
	$(GO) test -run 'Quant|Precision' -count=1 ./internal/core ./internal/online ./internal/tensor .
	$(GO) run ./cmd/benchdiff \
	    -metric 'qdelta_p90/f32<=0.05' -metric 'qdelta_p90/int8<=0.05' \
	    -metric 'speedup/f32>=1.0' \
	    results/BENCH_quant.json results/BENCH_quant.json

# Re-measure the f64/f32/int8 predict latencies and q-error deltas
# (results/BENCH_quant.json); compare runs with cmd/benchdiff.
bench-quant:
	$(GO) run ./cmd/raalbench -exp quant -json -outdir results

# Streaming-engine gate: the bit-identity proofs (in-package edge cases
# plus the cross-corpus IMDB/TPC-H property test) and the parallel
# collection invariant, then the committed engine report checked against
# the acceptance bounds — streaming must hold ≥2x the materialized
# throughput and shed ≥50% of its peak heap on the million-row join, at
# well under one allocation per input row. Self-diffing the report makes
# the delta columns no-ops; the absolute -metric bounds are the point.
engine:
	$(GO) test -run 'Streaming|TestCollectWorker|TestPrefix' -count=1 ./internal/engine ./internal/workload
	$(GO) run ./cmd/benchdiff \
	    -metric 'throughput_ratio>=2.0' -metric 'peak_heap_reduction>=0.5' \
	    -metric 'allocs_per_row<=1.0' \
	    results/BENCH_engine.json results/BENCH_engine.json

# Re-measure streaming vs materialized execution on the million-row
# 3-way join (results/BENCH_engine.json); compare runs with benchdiff.
bench-engine:
	$(GO) run ./cmd/raalbench -exp engine -json -outdir results

vet:
	$(GO) vet ./...

# Per-package coverage gate: every package that has tests must cover at
# least COVER_FLOOR% of its statements (packages with no test files —
# cmd/, examples/, test helpers — are exempt). The floor sits just below
# the current minimum (internal/cardest, ~68%), so real regressions fail
# while normal churn passes.
COVER_FLOOR ?= 65
cover:
	@$(GO) test -cover ./... > cover.tmp; s=$$?; cat cover.tmp; \
	if [ $$s -ne 0 ]; then rm -f cover.tmp; exit $$s; fi; \
	awk -v floor=$(COVER_FLOOR) '$$1 == "ok" { \
	    for (i = 1; i < NF; i++) if ($$i == "coverage:") { \
	        pct = $$(i+1); sub(/%/, "", pct); \
	        if (pct + 0 < floor) bad = bad sprintf("\n  %s %s%%", $$2, pct); \
	    } } \
	    END { if (bad != "") { printf "\npackages below %s%% coverage:%s\n", floor, bad; exit 1 } \
	          printf "\nall tested packages meet the %s%% coverage floor\n", floor }' cover.tmp; \
	s=$$?; rm -f cover.tmp; exit $$s

# Short fixed-budget fuzz of the SQL parser (the seed corpus plus any
# committed regression inputs also replay under plain `go test`).
FUZZTIME ?= 15s
fuzz:
	$(GO) test ./internal/sql -run=XXX -fuzz=FuzzParse -fuzztime=$(FUZZTIME)

# The pre-merge gate: static checks, the full test suite, and a fuzz
# smoke of the parser.
check: vet test fuzz
