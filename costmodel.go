package raal

import (
	"bufio"
	"context"
	"fmt"
	"io"

	"raal/internal/core"
	"raal/internal/encode"
	"raal/internal/telemetry"
	"raal/internal/workload"
)

// Cost-model files open with a magic string and format version so that
// loading a truncated, corrupt, or non-model file fails with a clear
// error instead of an opaque gob failure (see core.ReadHeader).
const (
	costModelMagic        = "RAALcm"
	costModelVersion byte = 1
)

// CostModel is a trained end-to-end cost estimator: a fitted feature
// encoder plus a deep network of some Variant.
type CostModel struct {
	enc    *encode.Encoder
	model  *core.Model
	qmodel *core.QModel // nil while serving the f64 reference path; see EnablePrecision
	instr  *core.Instrumentation
	api    apiCounters
	cache  *encodeCache // nil until EnableEncodeCache
}

// apiCounters tracks public estimation-API usage. The zero value (nil
// counters) is inert, so an uninstrumented model pays only nil checks.
type apiCounters struct {
	estimates  *telemetry.Counter // Estimate / EstimateCtx / EstimateBatch* calls
	selects    *telemetry.Counter // SelectPlan / SelectPlanCtx calls
	recommends *telemetry.Counter // RecommendResources* calls
	encHits    *telemetry.Counter // encode-cache lookups served without re-encoding
	encMisses  *telemetry.Counter // encode-cache lookups that fell through to EncodePlan
	gateFails  *telemetry.Counter // quantized snapshots refused by the accuracy gate
}

// Instrument registers this model's telemetry on reg: API call counters
// (raal_api_*) plus the core inference and training metric families
// (predict latency/throughput, epoch progress). Call once at wiring time,
// before the model starts serving; the counters are then updated lock-free
// on every API call. Registration is get-or-create, so instrumenting
// several models on one registry aggregates them into the same families.
//
// Note SelectPlan and RecommendResources route through the batch
// estimation path internally; raal_api_estimates_total counts only direct
// Estimate/EstimateBatch calls, not those internal reuses.
func (cm *CostModel) Instrument(reg *telemetry.Registry) {
	cm.api.estimates = reg.NewCounter("raal_api_estimates_total",
		"Direct cost-estimation API calls (Estimate and EstimateBatch variants).")
	cm.api.selects = reg.NewCounter("raal_api_plan_selections_total",
		"Plan-selection API calls (SelectPlan variants).")
	cm.api.recommends = reg.NewCounter("raal_api_resource_recommendations_total",
		"Resource-recommendation API calls (RecommendResources variants).")
	cm.api.encHits = reg.NewCounter("raal_encode_cache_hits_total",
		"Plan encodings served from the feature-encoding cache.")
	cm.api.encMisses = reg.NewCounter("raal_encode_cache_misses_total",
		"Plan encodings that missed the feature-encoding cache.")
	cm.api.gateFails = reg.NewCounter("raal_quant_gate_failures_total",
		"Quantized model snapshots refused by the accuracy gate (serving stayed on float64).")
	cm.instr = core.NewInstrumentation(reg)
	cm.model.Instrument(cm.instr)
	if cm.qmodel != nil {
		cm.qmodel.Instrument(cm.instr)
	}
}

// EnableEncodeCache attaches an LRU of up to capacity encoded plans to the
// estimation APIs: a repeated (plan, resources) pair reuses its cached
// feature sample instead of re-walking the operator tree. Estimates are
// bit-identical with and without the cache (the encoder is deterministic
// and samples are immutable once built). capacity <= 0 disables caching.
// Safe for concurrent use once set, but call before the model starts
// serving; hits and misses are visible as raal_encode_cache_{hits,misses}
// when the model is instrumented.
func (cm *CostModel) EnableEncodeCache(capacity int) {
	if capacity <= 0 {
		cm.cache = nil
		return
	}
	cm.cache = newEncodeCache(capacity)
}

// encodePlan is the cache-aware front door to the encoder: every
// estimation path routes through it so hit accounting stays consistent.
// Cache entries are tagged with the active serving precision, so a
// precision switch starts attributing (and warming) its own entries
// instead of inheriting the previous mode's hit counts.
func (cm *CostModel) encodePlan(p *Plan, res Resources) *Sample {
	return cm.encodePlanAt(cm.Precision().String(), p, res)
}

// encodePlanAt is encodePlan with an explicit precision tag. The online
// serving layer passes the live champion's precision, which can differ
// from cm's own (the champion hot-swaps and may fall back to f64 on a
// gate refusal).
func (cm *CostModel) encodePlanAt(prec string, p *Plan, res Resources) *Sample {
	if cm.cache == nil {
		return cm.enc.EncodePlan(p, res)
	}
	key := planKey(p, res)
	if s, ok := cm.cache.get(prec, key); ok {
		cm.api.encHits.Inc()
		return s
	}
	cm.api.encMisses.Inc()
	s := cm.enc.EncodePlan(p, res)
	cm.cache.add(prec, key, s)
	return s
}

// Precision reports the numeric format the estimation APIs currently
// serve at: PrecisionF64 until EnablePrecision installs a quantized
// snapshot, then that snapshot's precision.
func (cm *CostModel) Precision() core.Precision {
	if cm.qmodel != nil {
		return cm.qmodel.Precision
	}
	return core.PrecisionF64
}

// EnablePrecision switches the serving precision of every estimation
// API. PrecisionF64 restores the float64 reference path (always
// succeeds). A reduced precision quantizes the trained model
// (core.Model.Quantize) and — when gate samples are supplied — runs the
// accuracy gate (core.VerifyQuantized) before installing it: the
// GateQuantile q-error delta between the quantized and float64
// predictions over gate must stay within maxQDelta. On refusal the
// typed *core.QuantGateError is returned, raal_quant_gate_failures_total
// is incremented (when instrumented), and serving keeps its previous
// precision. An empty gate set installs without verification — for
// interactive tools; serving paths should always gate.
//
// Like EnableEncodeCache, call at wiring time, before the model starts
// serving; the switch is not synchronized against in-flight estimates.
func (cm *CostModel) EnablePrecision(p core.Precision, gate []*Sample, maxQDelta float64) error {
	if p == core.PrecisionF64 {
		cm.qmodel = nil
		return nil
	}
	qm, err := cm.model.Quantize(core.QuantConfig{Precision: p})
	if err != nil {
		return err
	}
	if len(gate) > 0 {
		if err := core.VerifyQuantized(cm.model, qm, gate, maxQDelta); err != nil {
			cm.api.gateFails.Inc()
			return err
		}
	}
	if cm.instr != nil {
		qm.Instrument(cm.instr)
	}
	cm.qmodel = qm
	return nil
}

// predict/predictWith/predictCtx/predictSpan dispatch one forward pass
// to the active precision's model. Every estimation API routes through
// these, so a precision switch covers Estimate, SelectPlan, and
// RecommendResources uniformly.
func (cm *CostModel) predict(samples []*Sample) []float64 {
	if q := cm.qmodel; q != nil {
		return q.Predict(samples)
	}
	return cm.model.Predict(samples)
}

func (cm *CostModel) predictWith(samples []*Sample, opt core.PredictOpts) []float64 {
	if q := cm.qmodel; q != nil {
		return q.PredictWith(samples, opt)
	}
	return cm.model.PredictWith(samples, opt)
}

func (cm *CostModel) predictCtx(ctx context.Context, samples []*Sample, opt core.PredictOpts) ([]float64, error) {
	if q := cm.qmodel; q != nil {
		return q.PredictCtx(ctx, samples, opt)
	}
	return cm.model.PredictCtx(ctx, samples, opt)
}

func (cm *CostModel) predictSpan(samples []*Sample, sp *telemetry.Span) []float64 {
	if q := cm.qmodel; q != nil {
		return q.PredictSpan(samples, sp)
	}
	return cm.model.PredictSpan(samples, sp)
}

// TrainOptions controls cost-model training.
type TrainOptions struct {
	// Epochs (default 30), Batch (default 16), LR (default 3e-3).
	Epochs int
	Batch  int
	LR     float64
	// TrainFrac is the train split fraction (default 0.8); the remainder
	// becomes the held-out set reported by TrainCostModel.
	TrainFrac float64
	Seed      int64
	// Workers and ShardSize enable data-parallel training: each
	// mini-batch is split into ShardSize-sample shards whose gradients
	// are computed on Workers goroutines and merged in shard order.
	// Workers never changes the trained model; ShardSize fixes the shard
	// boundaries (0 keeps each batch whole, the serial trainer).
	Workers   int
	ShardSize int
	// Progress, if set, receives per-epoch training loss.
	Progress func(epoch int, loss float64)
	// Metrics, if set, receives training telemetry (epoch counter, latest
	// loss, shard throughput) during the run, and the returned CostModel
	// comes back already instrumented on the same registry (equivalent to
	// calling Instrument on it).
	Metrics *telemetry.Registry
}

// TrainReport summarizes a training run.
type TrainReport struct {
	TrainSamples, TestSamples int
	LossCurve                 []float64
	// Held-out metrics (RE and COR/R² on seconds, MSE on the log-cost
	// scale).
	Held Metrics
	// State is the run's resumable training state (optimizer moments and
	// shuffle position). Persist it with SaveCheckpoint to continue the
	// run later — ResumeCostModel from it reproduces an uninterrupted
	// longer run bit for bit.
	State *TrainState
}

// TrainCostModel fits an encoder on ds and trains a cost model of the
// given variant, returning the model and a held-out evaluation.
func TrainCostModel(ds *Dataset, v Variant, opt TrainOptions) (*CostModel, *TrainReport, error) {
	if ds == nil || len(ds.Records) == 0 {
		return nil, nil, fmt.Errorf("raal: empty dataset")
	}
	if opt.TrainFrac == 0 {
		opt.TrainFrac = 0.8
	}
	if opt.Seed == 0 {
		opt.Seed = 1
	}

	enc, err := ds.FitEncoder(encode.DefaultConfig())
	if err != nil {
		return nil, nil, err
	}
	samples := ds.Encode(enc)
	train, test := workload.Split(samples, opt.TrainFrac, opt.Seed)
	if len(train) == 0 {
		return nil, nil, fmt.Errorf("raal: train split is empty")
	}

	semDim := enc.NodeDim() - enc.MaxNodes() - 2
	mc := core.DefaultConfig(semDim, enc.MaxNodes())
	mc.Seed = opt.Seed
	tc := core.DefaultTrainConfig()
	if opt.Epochs > 0 {
		tc.Epochs = opt.Epochs
	}
	if opt.Batch > 0 {
		tc.Batch = opt.Batch
	}
	if opt.LR > 0 {
		tc.LR = opt.LR
	}
	tc.Seed = opt.Seed
	tc.Workers = opt.Workers
	tc.ShardSize = opt.ShardSize
	tc.Progress = opt.Progress
	if opt.Metrics != nil {
		tc.Instr = core.NewInstrumentation(opt.Metrics)
	}
	tc.State = core.NewTrainState()

	model, tr, err := core.Train(train, v, mc, tc)
	if err != nil {
		return nil, nil, err
	}
	report := &TrainReport{
		TrainSamples: len(train),
		TestSamples:  len(test),
		LossCurve:    tr.LossCurve,
		State:        tc.State,
	}
	if len(test) > 0 {
		if report.Held, err = model.Evaluate(test); err != nil {
			return nil, nil, err
		}
	}
	cm := &CostModel{enc: enc, model: model}
	if opt.Metrics != nil {
		cm.Instrument(opt.Metrics)
	}
	return cm, report, nil
}

// Variant returns the architecture this model was trained with.
func (cm *CostModel) Variant() Variant { return cm.model.Var }

// Estimate predicts the execution cost (seconds) of plan p under res.
func (cm *CostModel) Estimate(p *Plan, res Resources) float64 {
	cm.api.estimates.Inc()
	s := cm.encodePlan(p, res)
	return cm.predict([]*Sample{s})[0]
}

// EstimateTraced is Estimate with a per-stage wall-time breakdown: the
// returned span is already ended and decomposes the call into encode →
// embed → lstm/conv → attention → dense → decode stages (stage durations
// sum to at most the span total). The span name carries the active
// serving precision ("estimate[f64]", "estimate[int8]", ...) so traces
// from different precisions are distinguishable. Tracing is
// observation-only — the prediction is bit-identical to Estimate.
func (cm *CostModel) EstimateTraced(p *Plan, res Resources) (float64, *telemetry.Span) {
	cm.api.estimates.Inc()
	sp := telemetry.StartSpan("estimate[" + cm.Precision().String() + "]")
	stop := sp.Stage("encode")
	s := cm.encodePlan(p, res)
	stop()
	preds := cm.predictSpan([]*Sample{s}, sp)
	sp.End()
	return preds[0], sp
}

// EstimateCtx is Estimate with cooperative cancellation: a cancelled or
// expired context aborts the forward pass boundary and returns ctx.Err().
func (cm *CostModel) EstimateCtx(ctx context.Context, p *Plan, res Resources) (float64, error) {
	cm.api.estimates.Inc()
	s := cm.encodePlan(p, res)
	preds, err := cm.predictCtx(ctx, []*Sample{s}, core.PredictOpts{})
	if err != nil {
		return 0, err
	}
	return preds[0], nil
}

// EstimateBatch predicts costs for many (plan, resources) pairs at once,
// scoring chunks across GOMAXPROCS worker goroutines.
func (cm *CostModel) EstimateBatch(plans []*Plan, res Resources) []float64 {
	return cm.EstimateBatchWith(plans, res, core.PredictOpts{})
}

// EstimateBatchWith is EstimateBatch with explicit data-parallelism
// settings; predictions are identical for every opt.
func (cm *CostModel) EstimateBatchWith(plans []*Plan, res Resources, opt core.PredictOpts) []float64 {
	cm.api.estimates.Inc()
	return cm.predictWith(cm.planSamples(plans, res), opt)
}

// EstimateBatchCtx is EstimateBatchWith with cooperative cancellation: a
// cancelled or expired context aborts scoring within one chunk and
// returns ctx.Err(). With a live context the predictions are
// bit-identical to EstimateBatchWith.
func (cm *CostModel) EstimateBatchCtx(ctx context.Context, plans []*Plan, res Resources, opt core.PredictOpts) ([]float64, error) {
	cm.api.estimates.Inc()
	return cm.predictCtx(ctx, cm.planSamples(plans, res), opt)
}

// EstimateEachCtx predicts costs for many independent (plan, resources)
// pairs in one batched forward pass: plans[i] is priced under res[i].
// This is the backing call for the serving layer's micro-batching
// coalescer, where concurrent requests carry their own allocations.
// Predictions are bit-identical to pricing each pair alone with
// EstimateCtx.
func (cm *CostModel) EstimateEachCtx(ctx context.Context, plans []*Plan, res []Resources, opt core.PredictOpts) ([]float64, error) {
	if len(plans) != len(res) {
		return nil, fmt.Errorf("raal: EstimateEachCtx got %d plan(s) but %d resource allocation(s)", len(plans), len(res))
	}
	cm.api.estimates.Inc()
	samples := make([]*Sample, len(plans))
	for i, p := range plans {
		samples[i] = cm.encodePlan(p, res[i])
	}
	return cm.predictCtx(ctx, samples, opt)
}

func (cm *CostModel) planSamples(plans []*Plan, res Resources) []*Sample {
	samples := make([]*Sample, len(plans))
	for i, p := range plans {
		samples[i] = cm.encodePlan(p, res)
	}
	return samples
}

// SelectPlan returns the candidate with the lowest predicted cost and
// that prediction. A nil plan is returned only for an empty candidate set.
func (cm *CostModel) SelectPlan(plans []*Plan, res Resources) (*Plan, float64) {
	if len(plans) == 0 {
		return nil, 0
	}
	cm.api.selects.Inc()
	preds := cm.predict(cm.planSamples(plans, res))
	best := argmin(preds)
	return plans[best], preds[best]
}

// SelectPlanCtx is SelectPlan with cooperative cancellation. As with
// SelectPlan, an empty candidate set yields a nil plan and no error.
func (cm *CostModel) SelectPlanCtx(ctx context.Context, plans []*Plan, res Resources) (*Plan, float64, error) {
	if len(plans) == 0 {
		return nil, 0, nil
	}
	cm.api.selects.Inc()
	preds, err := cm.predictCtx(ctx, cm.planSamples(plans, res), core.PredictOpts{})
	if err != nil {
		return nil, 0, err
	}
	best := argmin(preds)
	return plans[best], preds[best], nil
}

// RecommendResources searches a grid of candidate allocations for the one
// with the cheapest predicted cost for plan p — the inverse of the
// paper's main problem (Sec. II cites resource-matching systems [31,32];
// with a resource-aware cost model the search is a batched inference).
// It returns the winning allocation and its predicted cost.
func (cm *CostModel) RecommendResources(p *Plan, grid []Resources) (Resources, float64) {
	return cm.RecommendResourcesWith(p, grid, core.PredictOpts{})
}

// RecommendResourcesWith is RecommendResources with explicit
// data-parallelism settings; the recommendation is identical for every
// opt (the grid is scored through the same worker-pool path as
// EstimateBatchWith).
func (cm *CostModel) RecommendResourcesWith(p *Plan, grid []Resources, opt core.PredictOpts) (Resources, float64) {
	if len(grid) == 0 {
		return Resources{}, 0
	}
	cm.api.recommends.Inc()
	preds := cm.predictWith(cm.gridSamples(p, grid), opt)
	best := argmin(preds)
	return grid[best], preds[best]
}

// RecommendResourcesCtx is RecommendResources with cooperative
// cancellation; a cancelled or expired context aborts the grid sweep
// within one chunk and returns ctx.Err().
func (cm *CostModel) RecommendResourcesCtx(ctx context.Context, p *Plan, grid []Resources) (Resources, float64, error) {
	if len(grid) == 0 {
		return Resources{}, 0, nil
	}
	cm.api.recommends.Inc()
	preds, err := cm.predictCtx(ctx, cm.gridSamples(p, grid), core.PredictOpts{})
	if err != nil {
		return Resources{}, 0, err
	}
	best := argmin(preds)
	return grid[best], preds[best], nil
}

func (cm *CostModel) gridSamples(p *Plan, grid []Resources) []*Sample {
	samples := make([]*Sample, len(grid))
	for i, res := range grid {
		samples[i] = cm.encodePlan(p, res)
	}
	return samples
}

// argmin returns the index of the smallest value (first on ties).
func argmin(xs []float64) int {
	best := 0
	for i := range xs {
		if xs[i] < xs[best] {
			best = i
		}
	}
	return best
}

// DefaultResourceGrid enumerates the standard allocation lattice
// (executors × cores × memory on the 4-node cluster) used for resource
// recommendation.
func DefaultResourceGrid() []Resources {
	var grid []Resources
	base := DefaultResources()
	for _, ex := range []int{1, 2, 4, 8} {
		for _, cores := range []int{1, 2, 4} {
			for _, memGB := range []float64{1, 2, 4, 8, 12} {
				r := base
				r.Executors = ex
				r.ExecCores = cores
				r.ExecMemMB = memGB * 1024
				grid = append(grid, r)
			}
		}
	}
	return grid
}

// EvaluateOn computes the paper's metrics over a slice of encoded,
// labeled samples.
func (cm *CostModel) EvaluateOn(samples []*Sample) (Metrics, error) {
	return cm.model.Evaluate(samples)
}

// EncodeDataset encodes a dataset with this model's fitted encoder (for
// evaluation on fresh corpora).
func (cm *CostModel) EncodeDataset(ds *Dataset) []*Sample {
	return ds.Encode(cm.enc)
}

// Save writes the magic header, encoder, and network weights to w.
func (cm *CostModel) Save(w io.Writer) error {
	if err := core.WriteHeader(w, costModelMagic, costModelVersion); err != nil {
		return err
	}
	if err := cm.enc.Save(w); err != nil {
		return err
	}
	return cm.model.Save(w)
}

// LoadCostModel reads a model previously written by Save. Truncated,
// corrupt, foreign, and version-mismatched files are rejected with
// descriptive errors — never a panic, never an opaque gob failure.
func LoadCostModel(r io.Reader) (*CostModel, error) {
	// The stream holds several gob sections (encoder, model header,
	// weights), each read by its own decoder; decoders wrap non-ByteReader
	// inputs in private read-ahead buffers that steal bytes from the next
	// section. Share one buffered reader so file-backed loads stay
	// aligned.
	if _, ok := r.(io.ByteReader); !ok {
		r = bufio.NewReader(r)
	}
	if err := core.ReadHeader(r, costModelMagic, costModelVersion, "cost model"); err != nil {
		return nil, err
	}
	enc, err := encode.LoadEncoder(r)
	if err != nil {
		return nil, fmt.Errorf("raal: loading cost-model encoder section (truncated or corrupt file): %w", err)
	}
	model, err := core.LoadModel(r)
	if err != nil {
		return nil, err
	}
	return &CostModel{enc: enc, model: model}, nil
}
