package raal

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"raal/internal/encode"
	"raal/internal/physical"
	"raal/internal/serve"
	"raal/internal/sparksim"
	"raal/internal/telemetry"
)

func TestEncodeCacheLRUEviction(t *testing.T) {
	c := newEncodeCache(2)
	a, b, d := new(encode.Sample), new(encode.Sample), new(encode.Sample)
	c.add("f64", "a", a)
	c.add("f64", "b", b)
	if _, ok := c.get("f64", "a"); !ok { // touch a: b becomes LRU
		t.Fatal("a should be cached")
	}
	c.add("f64", "d", d) // evicts b
	if _, ok := c.get("f64", "b"); ok {
		t.Fatal("b should have been evicted as least recently used")
	}
	if s, ok := c.get("f64", "a"); !ok || s != a {
		t.Fatal("a should have survived the eviction")
	}
	if s, ok := c.get("f64", "d"); !ok || s != d {
		t.Fatal("d should be cached")
	}
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
	// Re-adding an existing key must update in place, not grow.
	c.add("f64", "d", a)
	if s, _ := c.get("f64", "d"); s != a {
		t.Fatal("re-add should replace the stored sample")
	}
	if c.len() != 2 {
		t.Fatalf("len after re-add = %d, want 2", c.len())
	}
}

func TestPlanKeyFingerprint(t *testing.T) {
	sys, _, _ := sharedSystem(t)
	plans, err := sys.Plan(`SELECT COUNT(*) FROM title t, movie_companies mc WHERE t.id = mc.movie_id`)
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) < 2 {
		t.Fatalf("want multiple candidate plans, got %d", len(plans))
	}
	res := DefaultResources()

	if planKey(plans[0], res) != planKey(plans[0], res) {
		t.Fatal("identical inputs must produce identical keys")
	}
	if planKey(plans[0], res) == planKey(plans[1], res) {
		t.Fatal("different candidate plans must produce different keys")
	}
	res2 := res
	res2.ExecMemMB *= 2
	if planKey(plans[0], res) == planKey(plans[0], res2) {
		t.Fatal("different resources must produce different keys")
	}
	// Fields the encoder never reads must not defeat caching: annotating
	// actual rows after execution keeps the fingerprint stable.
	plans2, err := sys.Plan(`SELECT COUNT(*) FROM title t, movie_companies mc WHERE t.id = mc.movie_id`)
	if err != nil {
		t.Fatal(err)
	}
	if planKey(plans[0], res) != planKey(plans2[0], res) {
		t.Fatal("re-planning the same SQL must produce the same key")
	}
	plans2[0].Nodes[0].ActRows = 12345
	plans2[0].Nodes[0].Skew = 0.9
	if planKey(plans[0], res) != planKey(plans2[0], res) {
		t.Fatal("ActRows/Skew are not encoder inputs and must not change the key")
	}
}

func TestEstimateUsesEncodeCache(t *testing.T) {
	sys, _, cm := sharedSystem(t)
	plans, err := sys.Plan(`SELECT COUNT(*) FROM movie_keyword mk WHERE mk.keyword_id < 100`)
	if err != nil {
		t.Fatal(err)
	}
	p, res := plans[0], DefaultResources()

	base := cm.Estimate(p, res) // uncached reference

	reg := telemetry.NewRegistry()
	cm.Instrument(reg)
	cm.EnableEncodeCache(8)
	t.Cleanup(func() { cm.EnableEncodeCache(0) })

	if got := cm.Estimate(p, res); got != base {
		t.Fatalf("first cached estimate %v != uncached %v", got, base)
	}
	if got := cm.Estimate(p, res); got != base {
		t.Fatalf("repeat cached estimate %v != uncached %v", got, base)
	}
	if h, m := cm.api.encHits.Value(), cm.api.encMisses.Value(); h != 1 || m != 1 {
		t.Fatalf("hits=%d misses=%d, want 1 hit and 1 miss after two identical estimates", h, m)
	}

	// A different allocation is a different key: miss, then hit.
	res2 := res
	res2.Executors = 8
	cm.Estimate(p, res2)
	cm.Estimate(p, res2)
	if h, m := cm.api.encHits.Value(), cm.api.encMisses.Value(); h != 2 || m != 2 {
		t.Fatalf("hits=%d misses=%d, want 2 hits and 2 misses", h, m)
	}
}

func TestEncodeCacheBitIdenticalAcrossAPIs(t *testing.T) {
	sys, _, cm := sharedSystem(t)
	query := `SELECT COUNT(*) FROM title t, movie_companies mc WHERE t.id = mc.movie_id AND mc.company_id < 50`
	plans, err := sys.Plan(query)
	if err != nil {
		t.Fatal(err)
	}
	res := DefaultResources()
	grid := DefaultResourceGrid()[:10]

	plain := cm.EstimateBatch(plans, res)
	plainRec, plainCost := cm.RecommendResources(plans[0], grid)

	cm.EnableEncodeCache(64)
	t.Cleanup(func() { cm.EnableEncodeCache(0) })
	for round := 0; round < 2; round++ { // round 2 is fully cache-served
		cached := cm.EstimateBatch(plans, res)
		for i := range plain {
			if cached[i] != plain[i] {
				t.Fatalf("round %d: cached batch estimate %d = %v, want %v", round, i, cached[i], plain[i])
			}
		}
		rec, cost := cm.RecommendResources(plans[0], grid)
		if rec != plainRec || cost != plainCost {
			t.Fatalf("round %d: cached recommendation (%v, %v) != uncached (%v, %v)",
				round, rec, cost, plainRec, plainCost)
		}
	}
}

// TestServeEncodeCacheSkipsReencode drives the HTTP serving stack end to
// end: the same SQL POSTed twice should hit the encode cache on the second
// request (the planner emits a fresh plan object each time, so the hit
// proves the fingerprint key, not pointer identity), and both cache
// counters must be visible in the /metrics exposition.
func TestServeEncodeCacheSkipsReencode(t *testing.T) {
	sys, _, cm := sharedSystem(t)

	reg := telemetry.NewRegistry()
	met := serve.NewMetrics(reg)
	cm.Instrument(reg)
	cm.EnableEncodeCache(32)
	t.Cleanup(func() { cm.EnableEncodeCache(0) })

	srv, err := serve.New(serve.Config{
		Deep: func(ctx context.Context, p *physical.Plan, res sparksim.Resources) (float64, error) {
			return cm.EstimateCtx(ctx, p, res)
		},
		Metrics: met,
	})
	if err != nil {
		t.Fatal(err)
	}
	handler, err := serve.NewHandler(srv, serve.HTTPConfig{
		Planner: sys.Plan,
		Metrics: met,
	})
	if err != nil {
		t.Fatal(err)
	}

	body := `{"sql": "SELECT COUNT(*) FROM movie_keyword mk WHERE mk.keyword_id < 100"}`
	var costs []string
	for i := 0; i < 2; i++ {
		req := httptest.NewRequest("POST", "/estimate", strings.NewReader(body))
		rr := httptest.NewRecorder()
		handler.ServeHTTP(rr, req)
		if rr.Code != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, rr.Code, rr.Body.String())
		}
		costs = append(costs, rr.Body.String())
	}
	if costs[0] != costs[1] {
		t.Fatalf("cached request changed the response: %q vs %q", costs[0], costs[1])
	}

	req := httptest.NewRequest("GET", "/metrics", nil)
	rr := httptest.NewRecorder()
	handler.ServeHTTP(rr, req)
	if rr.Code != http.StatusOK {
		t.Fatalf("/metrics status %d", rr.Code)
	}
	hits := metricValue(t, rr.Body.String(), "raal_encode_cache_hits_total")
	misses := metricValue(t, rr.Body.String(), "raal_encode_cache_misses_total")
	if misses != 1 {
		t.Fatalf("raal_encode_cache_misses_total = %v, want 1 (first request encodes)", misses)
	}
	if hits != 1 {
		t.Fatalf("raal_encode_cache_hits_total = %v, want 1 (second request skips re-encoding)", hits)
	}
}

// metricValue extracts a counter's value from a Prometheus text exposition.
func metricValue(t *testing.T, exposition, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(exposition, "\n") {
		if !strings.HasPrefix(line, name+" ") {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(strings.TrimPrefix(line, name)), 64)
		if err != nil {
			t.Fatalf("parsing %s from %q: %v", name, line, err)
		}
		return v
	}
	t.Fatalf("metric %s not found in exposition:\n%s", name, exposition)
	return 0
}

