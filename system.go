package raal

import (
	"fmt"

	"raal/internal/cardest"
	"raal/internal/catalog"
	"raal/internal/datagen"
	"raal/internal/engine"
	"raal/internal/logical"
	"raal/internal/physical"
	"raal/internal/sparksim"
	"raal/internal/sql"
	"raal/internal/workload"
)

// System bundles a benchmark database with the full query-processing
// substrate: SQL front-end, Catalyst-style planner, truth execution
// engine, and cluster simulator.
type System struct {
	bench Benchmark
	seed  int64

	db      *catalog.Database
	est     *cardest.Estimator
	binder  *logical.Binder
	planner *physical.Planner
	eng     *engine.Engine
	sim     *sparksim.Simulator
}

// Open generates the named synthetic benchmark at the given scale and
// wires up the substrate. All generation is deterministic in seed.
func Open(bench Benchmark, scale float64, seed int64) (*System, error) {
	if scale <= 0 {
		return nil, fmt.Errorf("raal: scale must be positive, got %v", scale)
	}
	var db *catalog.Database
	switch bench {
	case IMDB:
		db = datagen.IMDB(scale, seed)
	case TPCH:
		db = datagen.TPCH(scale, seed)
	default:
		return nil, fmt.Errorf("raal: unknown benchmark %q", bench)
	}
	est, err := cardest.New(db, 32, 16)
	if err != nil {
		return nil, err
	}
	eng := engine.New(db)
	eng.MaxRows = 2_000_000
	sim := sparksim.New(sparksim.DefaultConfig())
	sim.Seed = seed
	return &System{
		bench:   bench,
		seed:    seed,
		db:      db,
		est:     est,
		binder:  logical.NewBinder(db),
		planner: physical.NewPlanner(est),
		eng:     eng,
		sim:     sim,
	}, nil
}

// Benchmark returns the system's benchmark name.
func (s *System) Benchmark() Benchmark { return s.bench }

// TotalRows returns the database size in rows.
func (s *System) TotalRows() int { return s.db.TotalRows() }

// Tables returns the benchmark's table names.
func (s *System) Tables() []string { return s.db.TableNames() }

// Plan parses, binds, and enumerates candidate physical plans for a SQL
// query, Catalyst-default plan first.
func (s *System) Plan(query string) ([]*Plan, error) {
	stmt, err := sql.Parse(query)
	if err != nil {
		return nil, err
	}
	bound, err := s.binder.Bind(stmt)
	if err != nil {
		return nil, err
	}
	return s.planner.Enumerate(bound)
}

// DefaultPlan returns the plan Spark's rule-based model would pick.
func (s *System) DefaultPlan(query string) (*Plan, error) {
	plans, err := s.Plan(query)
	if err != nil {
		return nil, err
	}
	return plans[0], nil
}

// Execute runs a plan on the truth engine, populating every node's actual
// cardinality and returning the query result.
func (s *System) Execute(p *Plan) (*Relation, error) {
	return s.eng.Run(p)
}

// Cost simulates the wall-clock execution time of p under res. If the
// plan has been Executed, true cardinalities drive the simulation.
func (s *System) Cost(p *Plan, res Resources) (float64, error) {
	return s.sim.Estimate(p, res)
}

// CostBreakdown decomposes the simulated cost of p under res into
// per-stage CPU, disk, network, and spill components.
func (s *System) CostBreakdown(p *Plan, res Resources) (*sparksim.CostBreakdown, error) {
	return s.sim.Breakdown(p, res)
}

// Run is the convenience composition: plan (default choice), execute, and
// cost under res.
func (s *System) Run(query string, res Resources) (*Relation, float64, error) {
	p, err := s.DefaultPlan(query)
	if err != nil {
		return nil, 0, err
	}
	rel, err := s.Execute(p)
	if err != nil {
		return nil, 0, err
	}
	sec, err := s.Cost(p, res)
	if err != nil {
		return nil, 0, err
	}
	return rel, sec, nil
}

// CollectOptions sizes a training-data collection run.
type CollectOptions struct {
	// NumQueries is the number of generated queries (default 400).
	NumQueries int
	// PlansPerQuery caps candidate plans per query (default 3).
	PlansPerQuery int
	// ResStatesPerPlan is how many random resource states each plan is
	// priced under (default 3).
	ResStatesPerPlan int
	// FixedRes pins every record to one allocation (the fixed-resource
	// RDBMS-style setting); nil means random states.
	FixedRes *Resources
	// Workers bounds concurrent plan/execute goroutines during
	// collection (0 = GOMAXPROCS capped at 8; 1 = serial). The dataset
	// is bit-identical at any worker count.
	Workers int
	// Seed defaults to the system seed.
	Seed int64
}

// Collect generates a workload and gathers (plan, resources, cost)
// training records, following the paper's data collection phase.
func (s *System) Collect(opt CollectOptions) (*Dataset, error) {
	cfg := workload.DefaultCollectConfig()
	if opt.NumQueries > 0 {
		cfg.NumQueries = opt.NumQueries
	}
	if opt.PlansPerQuery > 0 {
		cfg.PlansPerQuery = opt.PlansPerQuery
	}
	if opt.ResStatesPerPlan > 0 {
		cfg.ResStatesPerPlan = opt.ResStatesPerPlan
	}
	cfg.FixedRes = opt.FixedRes
	cfg.Workers = opt.Workers
	cfg.Seed = s.seed
	if opt.Seed != 0 {
		cfg.Seed = opt.Seed
	}

	var gen *workload.Generator
	var err error
	switch s.bench {
	case TPCH:
		gen, err = workload.NewTPCHGenerator(s.db, cfg.Seed)
	default:
		gen, err = workload.NewIMDBGenerator(s.db, cfg.Seed)
	}
	if err != nil {
		return nil, err
	}
	return workload.Collect(s.db, gen, cfg)
}

// SelectPlan uses a trained cost model to choose the cheapest candidate
// plan for query under res, returning the plan and its predicted cost.
// Candidates are executed first so the chosen plan carries true
// cardinalities (call Cost to price it).
func (s *System) SelectPlan(cm *CostModel, query string, res Resources) (*Plan, float64, error) {
	plans, err := s.Plan(query)
	if err != nil {
		return nil, 0, err
	}
	if len(plans) > 3 {
		plans = plans[:3]
	}
	for _, p := range plans {
		if _, err := s.Execute(p); err != nil {
			return nil, 0, err
		}
	}
	best, pred := cm.SelectPlan(plans, res)
	if best == nil {
		return nil, 0, fmt.Errorf("raal: no plan selected")
	}
	return best, pred, nil
}
