// Plan selection: train a RAAL cost model and use it to pick execution
// plans under different resource allocations — the paper's end goal
// (Fig. 1 / Sec. III). The best plan is not fixed: it depends on the
// resources the cluster manager grants the query.
//
//	go run ./examples/plan_selection
package main

import (
	"fmt"
	"log"

	"raal"
)

func main() {
	sys, err := raal.Open(raal.IMDB, 0.1, 1)
	if err != nil {
		log.Fatal(err)
	}

	// Phase 1 (paper Sec. IV-B): collect training data — every candidate
	// plan of each generated query, priced under random resource states.
	fmt.Println("collecting training data ...")
	ds, err := sys.Collect(raal.CollectOptions{NumQueries: 150, ResStatesPerPlan: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("collected %d (plan, resources, cost) records\n", len(ds.Records))

	// Phase 2: train the resource-aware deep cost model.
	fmt.Println("training RAAL ...")
	cm, report, err := raal.TrainCostModel(ds, raal.RAAL(), raal.TrainOptions{Epochs: 20})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("held-out metrics: %s\n\n", report.Held)

	// Phase 3: resource-aware plan selection.
	query := `SELECT COUNT(*) FROM title t, movie_companies mc, movie_keyword mk
	          WHERE t.id = mc.movie_id AND t.id = mk.movie_id
	          AND mc.company_id = 7 AND mk.keyword_id < 2000`
	plans, err := sys.Plan(query)
	if err != nil {
		log.Fatal(err)
	}
	if len(plans) > 3 {
		plans = plans[:3]
	}
	for _, p := range plans {
		if _, err := sys.Execute(p); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Println("plan choice vs executor memory (predicted | simulated-true cost, seconds):")
	for _, memGB := range []float64{1, 2, 4, 8, 12} {
		res := raal.DefaultResources()
		res.ExecMemMB = memGB * 1024

		best, pred := cm.SelectPlan(plans, res)
		truth, err := sys.Cost(best, res)
		if err != nil {
			log.Fatal(err)
		}
		defTruth, err := sys.Cost(plans[0], res)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %4.0f GB → %-34s pred %6.1f | true %6.1f (default plan: %6.1f)\n",
			memGB, best.Sig, pred, truth, defTruth)
	}
}
