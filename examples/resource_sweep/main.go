// Resource sweep: re-enact the paper's Sec. III analysis — the cost of
// each candidate plan as executor memory and executor count vary, showing
// that resource effects are non-monotone and plan-dependent.
//
//	go run ./examples/resource_sweep
package main

import (
	"fmt"
	"log"

	"raal"
)

func main() {
	sys, err := raal.Open(raal.IMDB, 0.3, 1)
	if err != nil {
		log.Fatal(err)
	}

	// The paper's two-table join with both SMJ and BHJ candidates.
	query := `SELECT COUNT(*) FROM title t, movie_info_idx mi_idx
	          WHERE t.id = mi_idx.movie_id AND t.kind_id < 7
	          AND t.production_year > 1961 AND mi_idx.info_type_id < 101`
	plans, err := sys.Plan(query)
	if err != nil {
		log.Fatal(err)
	}
	if len(plans) > 3 {
		plans = plans[:3]
	}
	for _, p := range plans {
		if _, err := sys.Execute(p); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Println("cost (s) vs executor memory — 2 executors × 2 cores")
	fmt.Printf("%-40s", "plan")
	for mem := 1; mem <= 8; mem++ {
		fmt.Printf(" %6dGB", mem)
	}
	fmt.Println()
	for _, p := range plans {
		fmt.Printf("%-40s", p.Sig)
		for mem := 1; mem <= 8; mem++ {
			res := raal.DefaultResources()
			res.ExecMemMB = float64(mem) * 1024
			sec, err := sys.Cost(p, res)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" %8.1f", sec)
		}
		fmt.Println()
	}

	fmt.Println("\ncost (s) vs executors — 2 cores × 4 GB each")
	fmt.Printf("%-40s", "plan")
	for _, ex := range []int{1, 2, 4, 8} {
		fmt.Printf(" %6dex", ex)
	}
	fmt.Println()
	for _, p := range plans {
		fmt.Printf("%-40s", p.Sig)
		for _, ex := range []int{1, 2, 4, 8} {
			res := raal.DefaultResources()
			res.Executors = ex
			sec, err := sys.Cost(p, res)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" %8.1f", sec)
		}
		fmt.Println()
	}

	fmt.Println("\nNote how the cheapest plan depends on the allocation — the")
	fmt.Println("reason a cost model must be resource-aware.")
}
