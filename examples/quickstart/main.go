// Quickstart: open a synthetic benchmark, plan a query, execute it, and
// price it on the simulated cluster.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"raal"
)

func main() {
	// A scaled-down synthetic IMDB (Join Order Benchmark schema) with a
	// simulated 4-node Spark cluster. Everything is deterministic in the
	// seed.
	sys, err := raal.Open(raal.IMDB, 0.1, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("benchmark: %s, %d rows in %d tables\n\n",
		sys.Benchmark(), sys.TotalRows(), len(sys.Tables()))

	query := `SELECT COUNT(*) FROM title t, movie_companies mc
	          WHERE t.id = mc.movie_id AND mc.company_id < 200`

	// Catalyst-style planning yields several physical candidates; the
	// first is what the default rule-based cost model would pick.
	plans, err := sys.Plan(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("planner produced %d candidates:\n", len(plans))
	for i, p := range plans {
		fmt.Printf("  plan %d: %s\n", i+1, p.Sig)
	}

	// Execute the default plan for the true answer and cardinalities.
	rel, err := sys.Execute(plans[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nresult: COUNT(*) = %d\n", rel.Ints["agg0"][0])

	// Price it under two allocations: resources change the cost.
	small := raal.DefaultResources() // 2 executors × 2 cores × 4 GB
	big := small
	big.Executors = 8
	big.ExecMemMB = 8192
	for _, res := range []raal.Resources{small, big} {
		sec, err := sys.Cost(plans[0], res)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("simulated cost under %s: %.2fs\n", res, sec)
	}

	// The full plan tree, Spark explain() style.
	fmt.Printf("\ndefault plan:\n%s", plans[0])
}
