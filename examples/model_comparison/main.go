// Model comparison: train the paper's architectures (RAAL and its
// ablations) plus the GPSJ analytical baseline on one corpus and compare
// their accuracy — a miniature of Tables IV, VI, and VII.
//
//	go run ./examples/model_comparison
package main

import (
	"fmt"
	"log"
	"math"

	"raal"
)

func main() {
	sys, err := raal.Open(raal.IMDB, 0.1, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("collecting training data ...")
	ds, err := sys.Collect(raal.CollectOptions{NumQueries: 200, ResStatesPerPlan: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d records collected\n\n", len(ds.Records))

	opts := raal.TrainOptions{Epochs: 25, Seed: 1}
	variants := []raal.Variant{
		raal.RAAL(),
		raal.RAAL().WithoutResources(),
		raal.NELSTM(),
		raal.NALSTM(),
		raal.RAAC(),
	}

	fmt.Printf("%-14s %8s %8s %8s %8s\n", "model", "RE", "MSE", "COR", "R2")
	for _, v := range variants {
		_, report, err := raal.TrainCostModel(ds, v, opts)
		if err != nil {
			log.Fatal(err)
		}
		m := report.Held
		fmt.Printf("%-14s %8.3f %8.3f %8.3f %8.3f\n", v.Name, m.RE, m.MSE, m.COR, m.R2)
	}

	// GPSJ needs no training: it prices plans analytically from catalog
	// statistics and cluster parameters — and pays for it in accuracy.
	g := raal.NewGPSJBaseline()
	var actual, est []float64
	for _, r := range ds.Records {
		actual = append(actual, r.CostSec)
		est = append(est, g.Estimate(r.Plan, r.Res))
	}
	m, err := raal.Evaluate(actual, est)
	if err != nil {
		log.Fatal(err)
	}
	// report MSE on the same log scale as the learned models
	var mse float64
	for i := range actual {
		d := math.Log1p(actual[i]) - math.Log1p(est[i])
		mse += d * d
	}
	m.MSE = mse / float64(len(actual))
	fmt.Printf("%-14s %8.3f %8.3f %8.3f %8.3f\n", "GPSJ", m.RE, m.MSE, m.COR, m.R2)

	fmt.Println("\nExpected shape: RAAL best; removing resources, structure, or")
	fmt.Println("node attention hurts; the hand-crafted GPSJ model trails far behind.")
}
