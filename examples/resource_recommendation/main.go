// Resource recommendation: the inverse of the paper's main problem. With
// a trained resource-aware cost model, finding the best allocation for a
// plan is one batched inference over an allocation grid — compare with
// the sampling-based resource matchers the paper cites (Sec. II, [31,32]).
//
//	go run ./examples/resource_recommendation
package main

import (
	"fmt"
	"log"

	"raal"
)

func main() {
	sys, err := raal.Open(raal.IMDB, 0.1, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("collecting training data and fitting RAAL ...")
	ds, err := sys.Collect(raal.CollectOptions{NumQueries: 150, ResStatesPerPlan: 3})
	if err != nil {
		log.Fatal(err)
	}
	cm, report, err := raal.TrainCostModel(ds, raal.RAAL(), raal.TrainOptions{Epochs: 20})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("held-out metrics: %s\n\n", report.Held)

	query := `SELECT COUNT(*) FROM title t, movie_keyword mk
	          WHERE t.id = mk.movie_id AND mk.keyword_id < 1500`
	plan, err := sys.DefaultPlan(query)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sys.Execute(plan); err != nil {
		log.Fatal(err)
	}

	grid := raal.DefaultResourceGrid()
	best, pred := cm.RecommendResources(plan, grid)
	truth, err := sys.Cost(plan, best)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recommended allocation: %s\n", best)
	fmt.Printf("predicted %.1fs, simulated-true %.1fs\n\n", pred, truth)

	// How good is the recommendation really? Compare against the true
	// grid optimum and the default allocation.
	bestTrue, bestSec := grid[0], 0.0
	for i, res := range grid {
		sec, err := sys.Cost(plan, res)
		if err != nil {
			log.Fatal(err)
		}
		if i == 0 || sec < bestSec {
			bestTrue, bestSec = res, sec
		}
	}
	defSec, err := sys.Cost(plan, raal.DefaultResources())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("true grid optimum:      %s → %.1fs\n", bestTrue, bestSec)
	fmt.Printf("default allocation:     %s → %.1fs\n", raal.DefaultResources(), defSec)
	fmt.Printf("recommendation regret:  %.1f%% above the optimum\n", 100*(truth-bestSec)/bestSec)
}
