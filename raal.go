// Package raal is a from-scratch reproduction of "A Resource-Aware Deep
// Cost Model for Big Data Query Processing" (Li, Wang, Wang, Sun, Peng —
// ICDE 2022): a learned cost model for Spark-SQL-style engines that
// predicts the execution time of a physical query plan *given the
// resources allocated to it*, and uses those predictions to pick the best
// candidate plan.
//
// The package exposes the full pipeline:
//
//	sys, _ := raal.Open(raal.IMDB, 0.1, 1)        // synthetic benchmark + simulated cluster
//	plans, _ := sys.Plan("SELECT COUNT(*) ...")   // Catalyst-style candidates
//	ds, _ := sys.Collect(raal.CollectOptions{})   // (plan, resources) → cost corpus
//	cm, _ := raal.TrainCostModel(ds, raal.RAAL(), raal.TrainOptions{})
//	best, pred, _ := sys.SelectPlan(cm, sql, res) // resource-aware plan choice
//
// Everything is pure Go and deterministic given seeds: the SQL front-end,
// planner, execution engine, cluster simulator, word2vec, and the neural
// network stack live under internal/.
package raal

import (
	"io"

	"raal/internal/baselines"
	"raal/internal/core"
	"raal/internal/encode"
	"raal/internal/engine"
	"raal/internal/metrics"
	"raal/internal/physical"
	"raal/internal/sparksim"
	"raal/internal/telemetry"
	"raal/internal/workload"
)

// Benchmark names the built-in synthetic benchmarks.
type Benchmark string

// Built-in benchmarks.
const (
	IMDB Benchmark = "imdb" // JOB-style skewed/correlated movie data
	TPCH Benchmark = "tpch" // uniform decision-support data
)

// Re-exported core types, so callers never import internal packages.
type (
	// Plan is a physical query plan (a tree of Spark-style operators).
	Plan = physical.Plan
	// PlanNode is one operator of a Plan.
	PlanNode = physical.Node
	// Relation is an executed query result.
	Relation = engine.Relation
	// Resources is a cluster resource allocation (paper Table I).
	Resources = sparksim.Resources
	// Dataset is a collected training corpus.
	Dataset = workload.Dataset
	// Variant selects a model architecture (RAAL or an ablation).
	Variant = core.Variant
	// Metrics bundles RE / MSE / COR / R² (paper Eqs. 12–15).
	Metrics = metrics.Result
	// Sample is one encoded training example.
	Sample = encode.Sample
	// GPSJ is the analytical Spark cost model baseline.
	GPSJ = baselines.GPSJ
	// CostBreakdown decomposes a simulated cost into per-stage parts.
	CostBreakdown = sparksim.CostBreakdown
	// TLSTM is the tree-LSTM RDBMS cost model baseline.
	TLSTM = baselines.TLSTM
	// PredictOpts tunes data-parallel inference (worker count and samples
	// per forward pass). The zero value uses GOMAXPROCS workers.
	PredictOpts = core.PredictOpts
	// MetricsRegistry collects counters, gauges, and histograms and writes
	// them in the Prometheus text exposition format (see NewMetricsRegistry
	// and CostModel.Instrument).
	MetricsRegistry = telemetry.Registry
	// Span is a per-stage wall-time breakdown of one inference call (see
	// CostModel.EstimateTraced).
	Span = telemetry.Span
	// Precision selects the numeric format inference runs in (see
	// CostModel.EnablePrecision).
	Precision = core.Precision
	// QuantGateError is the typed refusal returned when a quantized model
	// fails the accuracy gate; match with errors.As and serve f64.
	QuantGateError = core.QuantGateError
)

// Serving precisions: the float64 reference path and the two reduced
// inference-only formats (see CostModel.EnablePrecision).
const (
	PrecisionF64  = core.PrecisionF64
	PrecisionF32  = core.PrecisionF32
	PrecisionInt8 = core.PrecisionInt8
)

// ParsePrecision maps the CLI spelling ("f64", "f32", "int8") to a
// Precision.
func ParsePrecision(s string) (Precision, error) { return core.ParsePrecision(s) }

// NewMetricsRegistry returns an empty metrics registry. Wire it into
// TrainOptions.Metrics or CostModel.Instrument, then expose it over HTTP
// with its Handler method or serialize it with WriteText.
func NewMetricsRegistry() *MetricsRegistry { return telemetry.NewRegistry() }

// Model architecture constructors (paper Sec. IV-D and ablations).
var (
	// RAAL is the paper's full Resource-Aware Attentional LSTM.
	RAAL = core.RAAL
	// NELSTM drops the plan-structure embedding.
	NELSTM = core.NELSTM
	// NALSTM drops the node-aware attention layer.
	NALSTM = core.NALSTM
	// RAAC swaps the LSTM for a 1-D CNN.
	RAAC = core.RAAC
)

// DefaultResources is the paper's 2-executor × 2-core × 4 GB baseline
// allocation on a 4-node cluster.
func DefaultResources() Resources { return sparksim.DefaultResources() }

// MaxResources is the whole-cluster allocation used for Eq.-1
// normalization.
func MaxResources() Resources { return sparksim.MaxResources() }

// Evaluate computes the paper's metrics for estimated vs actual costs.
func Evaluate(actual, estimated []float64) (Metrics, error) {
	return metrics.Evaluate(actual, estimated)
}

// SaveModel writes a trained cost model (encoder + network) to w.
func SaveModel(w io.Writer, cm *CostModel) error { return cm.Save(w) }

// NewGPSJBaseline returns the analytical GPSJ cost model calibrated
// against the simulator's nominal hardware constants.
func NewGPSJBaseline() *GPSJ { return baselines.NewGPSJ(sparksim.DefaultConfig()) }
