package raal

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestCheckpointResumeBitEqual is the public-API half of the resume
// guarantee: training 4 epochs, checkpointing through the wire format,
// and resuming for 4 more must reproduce an uninterrupted 8-epoch run
// bit for bit.
func TestCheckpointResumeBitEqual(t *testing.T) {
	sys, ds, _ := sharedSystem(t)
	opts := TrainOptions{Epochs: 8, LR: 5e-3}
	long, _, err := TrainCostModel(ds, RAAL(), opts)
	if err != nil {
		t.Fatal(err)
	}

	half := opts
	half.Epochs = 4
	short, report, err := TrainCostModel(ds, RAAL(), half)
	if err != nil {
		t.Fatal(err)
	}
	if report.State == nil || report.State.Epochs != 4 {
		t.Fatalf("TrainReport.State = %+v, want 4 trained epochs", report.State)
	}

	var buf bytes.Buffer
	if err := SaveCheckpoint(&buf, short, report.State); err != nil {
		t.Fatal(err)
	}
	resumed, st, err := LoadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ResumeCostModel(resumed, st, ds, half); err != nil {
		t.Fatal(err)
	}
	if st.Epochs != 8 {
		t.Fatalf("resumed state counts %d epochs, want 8", st.Epochs)
	}

	plans, err := sys.Plan(`SELECT COUNT(*) FROM movie_keyword mk WHERE mk.keyword_id < 100`)
	if err != nil {
		t.Fatal(err)
	}
	res := DefaultResources()
	if a, b := long.Estimate(plans[0], res), resumed.Estimate(plans[0], res); a != b {
		t.Fatalf("resumed run diverged from uninterrupted run: %v != %v", b, a)
	}
}

func TestCheckpointErrors(t *testing.T) {
	_, ds, cm := sharedSystem(t)
	if err := SaveCheckpoint(&bytes.Buffer{}, cm, nil); err == nil {
		t.Fatal("checkpointing without a training state should error")
	}
	// A bare model file is not a checkpoint.
	var model bytes.Buffer
	if err := cm.Save(&model); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadCheckpoint(&model); err == nil {
		t.Fatal("model file accepted as checkpoint")
	}
	if _, err := ResumeCostModel(cm, nil, ds, TrainOptions{Epochs: 1}); err == nil {
		t.Fatal("resuming without a training state should error")
	}
}

// TestOnlineServingPublicAPI drives the public online-serving wrapper:
// estimates come from the champion, feedback flows into the loop, and
// the admin surface reports it.
func TestOnlineServingPublicAPI(t *testing.T) {
	sys, _, cm := sharedSystem(t)
	osrv, err := NewOnlineServing(cm, nil, OnlineOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if osrv.ChampionVersion() != 1 {
		t.Fatalf("bootstrap champion v%d, want v1", osrv.ChampionVersion())
	}

	plans, err := sys.Plan(`SELECT COUNT(*) FROM movie_keyword mk WHERE mk.keyword_id < 100`)
	if err != nil {
		t.Fatal(err)
	}
	res := DefaultResources()
	pred, err := osrv.EstimateCtx(t.Context(), plans[0], res)
	if err != nil {
		t.Fatal(err)
	}
	if want := cm.Estimate(plans[0], res); pred != want {
		t.Fatalf("champion estimate %v != cost-model estimate %v", pred, want)
	}
	actual, err := sys.Cost(plans[0], res)
	if err != nil {
		t.Fatal(err)
	}
	osrv.Feedback(plans[0], res, pred, actual)
	if st := osrv.Status(); st.Champion != 1 || st.ReplayLen != 1 {
		t.Fatalf("status after one feedback = %+v", st)
	}

	rec := httptest.NewRecorder()
	osrv.AdminHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/models", nil))
	if rec.Code != 200 {
		t.Fatalf("GET /models = %d: %s", rec.Code, rec.Body)
	}
	var got struct {
		Champion int `json:"champion"`
	}
	if err := json.NewDecoder(rec.Body).Decode(&got); err != nil || got.Champion != 1 {
		t.Fatalf("GET /models body champion=%d err=%v", got.Champion, err)
	}

	if _, err := osrv.EstimateEachCtx(t.Context(), plans[:1], nil, PredictOpts{}); err == nil ||
		!strings.Contains(err.Error(), "resource allocation") {
		t.Fatalf("length mismatch not rejected: %v", err)
	}
}
