package raal

import (
	"errors"
	"testing"
)

// gateSet returns a small encoded reference workload for the accuracy
// gate from the shared dataset.
func gateSet(t *testing.T) []*Sample {
	t.Helper()
	_, ds, cm := sharedSystem(t)
	gate := cm.EncodeDataset(ds)
	if len(gate) > 64 {
		gate = gate[:64]
	}
	return gate
}

// TestPrecisionCacheIsolation pins the serving-precision cache contract
// over a grid of (plan, resources) pairs: estimates made under f64 and
// under a reduced precision never share a cache entry, the fingerprint
// ID stays precision-agnostic (fleet-router affinity is unaffected by a
// replica's precision), and EncodeCacheKeyStats attributes hits to the
// precision whose traffic produced them.
func TestPrecisionCacheIsolation(t *testing.T) {
	sys, _, cm := sharedSystem(t)
	gate := gateSet(t)
	defer func() {
		cm.EnableEncodeCache(0)
		if err := cm.EnablePrecision(PrecisionF64, nil, 0); err != nil {
			t.Error(err)
		}
	}()

	type combo struct {
		p   *Plan
		res Resources
	}
	var combos []combo
	for _, q := range []string{
		`SELECT COUNT(*) FROM title t, movie_companies mc WHERE t.id = mc.movie_id`,
		`SELECT COUNT(*) FROM movie_keyword mk WHERE mk.keyword_id < 500`,
	} {
		plans, err := sys.Plan(q)
		if err != nil {
			t.Fatal(err)
		}
		res := DefaultResources()
		res2 := res
		res2.ExecMemMB *= 2
		combos = append(combos, combo{plans[0], res}, combo{plans[0], res2})
	}

	cm.EnableEncodeCache(64)
	estimateAll := func() {
		for _, c := range combos {
			cm.Estimate(c.p, c.res)
		}
	}
	estimateAll() // f64: one miss per combo
	estimateAll() // f64: one hit per combo

	if err := cm.EnablePrecision(PrecisionF32, gate, 0.05); err != nil {
		t.Fatalf("gate refused the f32 install: %v", err)
	}
	if cm.Precision() != PrecisionF32 {
		t.Fatalf("active precision = %v, want f32", cm.Precision())
	}
	estimateAll() // f32: must miss — f64 entries are not shared
	estimateAll() // f32: one hit per combo

	stats := cm.EncodeCacheKeyStats()
	if want := 2 * len(combos); len(stats) != want {
		t.Fatalf("cache holds %d entries, want %d (one per precision per combo)", len(stats), want)
	}
	perKey := map[string]map[string]uint64{} // fingerprint ID → precision → hits
	for _, s := range stats {
		if perKey[s.Key] == nil {
			perKey[s.Key] = map[string]uint64{}
		}
		if _, dup := perKey[s.Key][s.Precision]; dup {
			t.Fatalf("fingerprint %s has duplicate %s entries", s.Key, s.Precision)
		}
		perKey[s.Key][s.Precision] = s.Hits
	}
	if len(perKey) != len(combos) {
		t.Fatalf("%d distinct fingerprints, want %d (IDs must be precision-agnostic)", len(perKey), len(combos))
	}
	for key, byPrec := range perKey {
		for _, prec := range []string{"f64", "f32"} {
			hits, ok := byPrec[prec]
			if !ok {
				t.Fatalf("fingerprint %s has no %s entry", key, prec)
			}
			if hits != 1 {
				t.Fatalf("fingerprint %s precision %s served %d hits, want 1", key, prec, hits)
			}
		}
	}

	// The fingerprint the router hashes must match what the cache
	// reports, regardless of precision.
	if id := FingerprintID(PlanFingerprint(combos[0].p, combos[0].res)); perKey[id] == nil {
		t.Fatalf("router-side fingerprint %s not found in cache stats", id)
	}
}

// TestEnablePrecisionGateFallback pins the serving-layer gate contract:
// a deliberately impossible bound yields the typed refusal and leaves
// the previously active precision serving.
func TestEnablePrecisionGateFallback(t *testing.T) {
	_, _, cm := sharedSystem(t)
	gate := gateSet(t)
	if err := cm.EnablePrecision(PrecisionF64, nil, 0); err != nil {
		t.Fatal(err)
	}
	err := cm.EnablePrecision(PrecisionInt8, gate, 0) // bound 0: int8 can never match f64 exactly
	var gateErr *QuantGateError
	if !errors.As(err, &gateErr) {
		t.Fatalf("EnablePrecision returned %v, want *QuantGateError", err)
	}
	if cm.Precision() != PrecisionF64 {
		t.Fatalf("after refusal the active precision is %v, want the f64 fallback", cm.Precision())
	}
}
