module raal

go 1.22
