package raal

import (
	"bytes"
	"context"
	"errors"
	"math"
	"strings"
	"testing"
	"time"

	"raal/internal/core"
)

// TestLoadCostModelCorruptFiles truncates a saved cost model at every
// section boundary — magic, encoder, model header, weights — plus
// mid-section and foreign-file cases. Every one must come back as a
// descriptive error, never a panic, never an opaque gob message alone.
func TestLoadCostModelCorruptFiles(t *testing.T) {
	_, _, cm := sharedSystem(t)
	var full bytes.Buffer
	if err := cm.Save(&full); err != nil {
		t.Fatal(err)
	}
	raw := full.Bytes()

	// Reconstruct the section boundaries by re-saving the parts the
	// same way Save does.
	headerLen := len(costModelMagic) + 1
	var encBuf bytes.Buffer
	if err := cm.enc.Save(&encBuf); err != nil {
		t.Fatal(err)
	}
	modelAt := headerLen + encBuf.Len() // start of the core.Model section
	if modelAt >= len(raw) {
		t.Fatalf("section math wrong: model boundary %d beyond file %d", modelAt, len(raw))
	}
	netHeaderEnd := modelAt + len(core.ModelMagic) + 1

	cases := []struct {
		name string
		data []byte
		want string // substring the error must carry
	}{
		{"empty file", nil, "truncated"},
		{"mid-magic", raw[:3], "truncated"},
		{"magic only", raw[:headerLen], "encoder"},
		{"mid-encoder", raw[:headerLen+encBuf.Len()/2], "encoder"},
		{"encoder boundary (network missing)", raw[:modelAt], "truncated"},
		{"network magic only", raw[:netHeaderEnd], "model header"},
		{"mid-network", raw[:modelAt+(len(raw)-modelAt)/2], ""},
		{"truncated tail", raw[:len(raw)-7], "weights"},
		{"foreign file", []byte("GIF89a this is definitely not a model"), "bad magic"},
		{"v0 file (no header)", raw[headerLen:], "bad magic"},
		{"future version", flipByte(raw, len(costModelMagic)), "version mismatch"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("LoadCostModel panicked: %v", r)
				}
			}()
			_, err := LoadCostModel(bytes.NewReader(tc.data))
			if err == nil {
				t.Fatal("corrupt file loaded without error")
			}
			if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q should mention %q", err, tc.want)
			}
		})
	}

	// The untouched bytes must still load — the boundary math above is
	// only trustworthy if the full file round-trips.
	if _, err := LoadCostModel(bytes.NewReader(raw)); err != nil {
		t.Fatalf("full file failed to load: %v", err)
	}
}

func flipByte(raw []byte, at int) []byte {
	out := append([]byte(nil), raw...)
	out[at] ^= 0x5f
	return out
}

func TestEstimateCtx(t *testing.T) {
	sys, _, cm := sharedSystem(t)
	plans, err := sys.Plan(`SELECT COUNT(*) FROM movie_keyword mk WHERE mk.keyword_id < 100`)
	if err != nil {
		t.Fatal(err)
	}
	res := DefaultResources()

	got, err := cm.EstimateCtx(context.Background(), plans[0], res)
	if err != nil {
		t.Fatal(err)
	}
	if want := cm.Estimate(plans[0], res); got != want {
		t.Fatalf("EstimateCtx %v != Estimate %v", got, want)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := cm.EstimateCtx(ctx, plans[0], res); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if _, _, err := cm.SelectPlanCtx(ctx, plans, res); !errors.Is(err, context.Canceled) {
		t.Fatalf("SelectPlanCtx: want context.Canceled, got %v", err)
	}
	if _, _, err := cm.RecommendResourcesCtx(ctx, plans[0], DefaultResourceGrid()); !errors.Is(err, context.Canceled) {
		t.Fatalf("RecommendResourcesCtx: want context.Canceled, got %v", err)
	}
}

func TestSelectPlanCtxMatchesSelectPlan(t *testing.T) {
	sys, _, cm := sharedSystem(t)
	plans, err := sys.Plan(`SELECT COUNT(*) FROM title t, movie_companies mc WHERE t.id = mc.movie_id`)
	if err != nil {
		t.Fatal(err)
	}
	res := DefaultResources()
	wantPlan, wantPred := cm.SelectPlan(plans, res)
	gotPlan, gotPred, err := cm.SelectPlanCtx(context.Background(), plans, res)
	if err != nil {
		t.Fatal(err)
	}
	if gotPlan != wantPlan || gotPred != wantPred {
		t.Fatalf("SelectPlanCtx (%p, %v) != SelectPlan (%p, %v)", gotPlan, gotPred, wantPlan, wantPred)
	}
	// Empty candidate set stays well-defined, as in SelectPlan.
	if p, _, err := cm.SelectPlanCtx(context.Background(), nil, res); err != nil || p != nil {
		t.Fatalf("empty set: plan %v err %v", p, err)
	}
}

// TestRecommendResourcesWith pins the satellite fix: the grid sweep runs
// through the same worker-pool path as EstimateBatchWith, so every
// parallelism setting returns the identical recommendation, and the ctx
// variant agrees with both.
func TestRecommendResourcesWith(t *testing.T) {
	sys, _, cm := sharedSystem(t)
	plans, err := sys.Plan(`SELECT COUNT(*) FROM title t, movie_companies mc WHERE t.id = mc.movie_id`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Execute(plans[0]); err != nil {
		t.Fatal(err)
	}
	grid := DefaultResourceGrid()
	wantRes, wantPred := cm.RecommendResources(plans[0], grid)
	for _, opt := range []PredictOpts{
		{Workers: 1, ChunkSize: 1},
		{Workers: 4, ChunkSize: 7},
		{Workers: 2, ChunkSize: 64},
	} {
		gotRes, gotPred := cm.RecommendResourcesWith(plans[0], grid, opt)
		if gotRes != wantRes || gotPred != wantPred {
			t.Fatalf("opts %+v: recommendation diverged: (%v, %v) vs (%v, %v)",
				opt, gotRes, gotPred, wantRes, wantPred)
		}
	}
	ctxRes, ctxPred, err := cm.RecommendResourcesCtx(context.Background(), plans[0], grid)
	if err != nil {
		t.Fatal(err)
	}
	if ctxRes != wantRes || ctxPred != wantPred {
		t.Fatalf("ctx recommendation diverged: (%v, %v) vs (%v, %v)", ctxRes, ctxPred, wantRes, wantPred)
	}
	if _, _, err := cm.RecommendResourcesCtx(context.Background(), plans[0], nil); err != nil {
		t.Fatalf("empty grid should be well-defined: %v", err)
	}
}

// TestEstimateBatchCtxDeadline: a live deadline that cannot possibly be
// met on a big batch must surface context.DeadlineExceeded promptly.
func TestEstimateBatchCtxDeadline(t *testing.T) {
	sys, _, cm := sharedSystem(t)
	plans, err := sys.Plan(`SELECT COUNT(*) FROM title t, movie_companies mc WHERE t.id = mc.movie_id`)
	if err != nil {
		t.Fatal(err)
	}
	// An expired deadline is the deterministic way to exercise the path.
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Millisecond))
	defer cancel()
	start := time.Now()
	_, err = cm.EstimateBatchCtx(ctx, plans, DefaultResources(), PredictOpts{ChunkSize: 1})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("expired-deadline batch took %v", d)
	}
	// Sanity: the live-context batch agrees with EstimateBatch.
	got, err := cm.EstimateBatchCtx(context.Background(), plans, DefaultResources(), PredictOpts{})
	if err != nil {
		t.Fatal(err)
	}
	want := cm.EstimateBatch(plans, DefaultResources())
	for i := range want {
		if math.Abs(got[i]-want[i]) != 0 {
			t.Fatalf("batch ctx prediction %d differs: %v vs %v", i, got[i], want[i])
		}
	}
}

// TestEstimateEachCtx: the micro-batching substrate prices each
// (plan, resources) pair exactly as EstimateCtx would price it alone,
// honours cancellation, and rejects mismatched slice lengths.
func TestEstimateEachCtx(t *testing.T) {
	sys, _, cm := sharedSystem(t)
	plans, err := sys.Plan(`SELECT COUNT(*) FROM title t, movie_companies mc WHERE t.id = mc.movie_id`)
	if err != nil {
		t.Fatal(err)
	}
	// Distinct allocations per batch member, as concurrent requests carry.
	var batch []*Plan
	var res []Resources
	for i, ex := range []int{1, 2, 4, 8} {
		r := DefaultResources()
		r.Executors = ex
		batch = append(batch, plans[i%len(plans)])
		res = append(res, r)
	}
	got, err := cm.EstimateEachCtx(context.Background(), batch, res, PredictOpts{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range batch {
		alone, err := cm.EstimateCtx(context.Background(), batch[i], res[i])
		if err != nil {
			t.Fatal(err)
		}
		if got[i] != alone {
			t.Fatalf("pair %d: batched %v != alone %v", i, got[i], alone)
		}
	}
	if _, err := cm.EstimateEachCtx(context.Background(), batch, res[:1], PredictOpts{}); err == nil {
		t.Fatal("mismatched plan/resource lengths must be rejected")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := cm.EstimateEachCtx(ctx, batch, res, PredictOpts{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}
